#!/usr/bin/env python
"""Quickstart: distributed graph simulation in five steps.

1. generate a web-like labeled graph,
2. sample a cyclic pattern that is guaranteed to match,
3. fragment the graph over 8 sites at the paper's |Vf| = 25%,
4. run the partition-bounded algorithm dGPM,
5. check the answer against centralized simulation and read the meters.

Run:  python examples/quickstart.py
"""

from repro import DgpmConfig, partition, run_dgpm, simulation, web_graph
from repro.bench.workloads import cyclic_pattern
from repro.partition.metrics import partition_stats


def main() -> None:
    # 1. a scale-free, locality-structured data graph (Yahoo stand-in)
    graph = web_graph(4000, 20000, n_labels=24, seed=7)
    print(f"data graph: |V|={graph.n_nodes}, |E|={graph.n_edges}")

    # 2. a cyclic pattern sampled from the graph (so Q(G) is non-empty)
    query = cyclic_pattern(graph, n_nodes=5, n_edges=10, seed=1)
    print(f"query: |Vq|={query.n_nodes}, |Eq|={query.n_edges}, cyclic={not query.is_dag()}")

    # 3. fragment over 8 sites, boundary ratio ~25% (the paper's default)
    fragmentation = partition(graph, n_fragments=8, seed=7, vf_ratio=0.25)
    print(f"fragmentation: {partition_stats(fragmentation).describe()}")

    # 4. distributed evaluation with dGPM (Theorem 2)
    result = run_dgpm(query, fragmentation, DgpmConfig())
    print(f"metrics: {result.metrics.describe()}")

    # 5. the distributed answer equals the centralized one
    oracle = simulation(query, graph)
    assert result.relation == oracle, "distributed != centralized (bug!)"
    for u in query.nodes():
        print(f"  matches of {u}: {len(result.relation.matches_of(u))} nodes")
    print("distributed answer == centralized answer  [verified]")


if __name__ == "__main__":
    main()
