#!/usr/bin/env python
"""Standing queries over protocol v2: a fraud-ring watch, audited live.

A payment graph (accounts, devices, merchants) is served by a
:class:`~repro.net.NetworkSessionServer`.  A *standing query* watches for
fraud rings -- short label cycles of accounts transacting through a shared
device -- and the server PUSHes a stamped delta after every committed
mutation batch that changes the ring set.  Nothing polls: batches that
leave the answer unchanged push nothing.

Three parties share the server:

* an analyst opens ``client.subscribe(ring)`` and consumes the delta
  stream (protocol v2, pickle-free wire, one dedicated connection);
* a feed client streams mutations -- new transactions, chargeback edge
  removals, and full account takedowns (``remove_node``);
* a legacy v1 client (``versions=(1,)``) keeps issuing plain RUN requests
  against the same server, oblivious to v2 framing.

Every PUSH is audited against a replay-at-stamp oracle: the update log is
replayed to the delta's stamp on a pristine copy of the graph and the
folded subscriber view must equal a from-scratch centralized simulation.
Missing a changed stamp, or pushing at an unchanged one, fails the audit.

Run:  python examples/subscription_server.py
"""

import random
import threading
import time

from repro import partition, simulation, web_graph
from repro.bench.workloads import cyclic_pattern
from repro.graph.mutations import DeleteEdge, InsertEdge, RemoveNode
from repro.net import connect, serve_in_thread


def build_update_stream(graph, n_ops, seed):
    """A mixed op stream, valid by construction against a mirror."""
    rng = random.Random(seed)
    mirror = graph.copy()
    ops = []
    while len(ops) < n_ops:
        roll = rng.random()
        nodes = list(mirror.nodes())
        if roll < 0.45:
            edges = list(mirror.edges())
            u, v = edges[rng.randrange(len(edges))]
            mirror.remove_edge(u, v)
            ops.append(DeleteEdge(u, v))          # chargeback reversal
        elif roll < 0.85:
            u, v = rng.choice(nodes), rng.choice(nodes)
            if u == v or mirror.has_edge(u, v):
                continue
            mirror.add_edge(u, v)
            ops.append(InsertEdge(u, v))          # new transaction
        else:
            node = rng.choice(nodes)
            mirror.remove_node(node)
            ops.append(RemoveNode(node))          # account takedown
    return ops


def replay(graph, ops, n):
    """The payment graph after the first ``n`` updates."""
    out = graph.copy()
    for op in ops[:n]:
        if isinstance(op, DeleteEdge):
            out.remove_edge(op.u, op.v)
        elif isinstance(op, InsertEdge):
            out.add_edge(op.u, op.v)
        else:
            out.remove_node(op.node)
    return out


def as_sets(relation):
    return {q: set(v) for q, v in relation.as_dict().items()}


def main() -> None:
    graph = web_graph(120, 450, n_labels=4, seed=77)
    pristine = graph.copy()
    fragmentation = partition(graph, n_fragments=3, seed=77)
    ring = cyclic_pattern(graph, n_nodes=3, n_edges=4, seed=4)
    ops = build_update_stream(pristine, 30, seed=19)
    print(f"payment graph resident: {fragmentation!r}")
    print(f"fraud-ring pattern: {len(list(ring.nodes()))} roles, "
          f"{len(list(ring.edges()))} required transaction edges")

    with serve_in_thread(fragmentation, backend="thread", n_workers=4) as srv:
        host, port = srv.address
        print(f"serving on {host}:{port} (protocol v1+v2)")

        # -- the analyst: a standing query over its own v2 connection ------
        analyst = connect(srv.address)
        assert analyst.protocol_version == 2
        watch = analyst.subscribe(ring)
        baseline = as_sets(watch.relation)
        assert baseline == as_sets(simulation(ring, pristine))
        print(f"analyst subscribed: sub_id={watch.sub_id} at stamp "
              f"{watch.stamp}, {sum(map(len, baseline.values()))} "
              "ring memberships in the baseline")

        deltas = []
        done = threading.Event()

        def consume():
            for delta in watch:
                deltas.append(delta)
                verb = "lapsed" if delta.lapsed else (
                    f"+{len(delta.added)}/-{len(delta.removed)} memberships")
                print(f"  PUSH stamp {delta.stamp}: {verb}")
            done.set()

        threading.Thread(target=consume, daemon=True).start()

        # -- a legacy v1 client shares the server, no v2 anywhere ----------
        legacy = connect(srv.address, versions=(1,))
        assert legacy.protocol_version == 1

        # -- the feed: transactions, chargebacks, takedowns ----------------
        feed = connect(srv.address)
        takedowns = 0
        for op in ops:
            feed.apply([op])
            if isinstance(op, RemoveNode):
                takedowns += 1
        print(f"feed applied {len(ops)} updates "
              f"({takedowns} account takedowns)")

        # The v1 client still reads correct answers post-stream.
        v1_answer = as_sets(legacy.run(ring).relation)
        assert v1_answer == as_sets(simulation(ring, replay(pristine, ops, len(ops))))
        print("legacy v1 client verified against the oracle  [ok]")

        # Wait until the delta stream has caught up with the last
        # ring-changing stamp, then close the subscription.
        last_change, previous = 0, baseline
        for stamp in range(1, len(ops) + 1):
            oracle = as_sets(simulation(ring, replay(pristine, ops, stamp)))
            if oracle != previous:
                last_change = stamp
            previous = oracle
        deadline = time.time() + 30
        while time.time() < deadline and last_change:
            if deltas and deltas[-1].stamp >= last_change:
                break
            time.sleep(0.02)
        watch.close()
        done.wait(timeout=30)
        feed.close()
        legacy.close()
        analyst.close()

    # -- the audit: every PUSH against the replay-at-stamp oracle ----------
    view = {q: set(v) for q, v in baseline.items()}
    by_stamp = {d.stamp: d for d in deltas}
    previous = baseline
    for stamp in range(1, len(ops) + 1):
        oracle = as_sets(simulation(ring, replay(pristine, ops, stamp)))
        delta = by_stamp.get(stamp)
        if oracle == previous:
            assert delta is None, f"spurious PUSH at unchanged stamp {stamp}"
        else:
            assert delta is not None, f"missing PUSH at changed stamp {stamp}"
            for qn, vn in delta.added:
                view.setdefault(qn, set()).add(vn)
            for qn, vn in delta.removed:
                view[qn].discard(vn)
            assert view == oracle, f"subscriber view diverged at stamp {stamp}"
        previous = oracle
    print(f"audited all {len(ops)} stamps: {len(deltas)} PUSHed deltas, "
          "every one equal to the replay oracle, none spurious  [ok]")
    print("server closed cleanly")


if __name__ == "__main__":
    main()
