#!/usr/bin/env python
"""DAG workloads: influence-chain queries on a distributed citation graph.

The Citation experiments of the paper (Exp-2): pattern queries whose
diameter d controls how deep the citation chain reaches.  dGPMd schedules
message batches by query rank, so it needs exactly one communication round
per rank -- this script shows PT rising with d while data shipment stays
flat, and compares against dGPM (which would iterate to a fixpoint instead).

Run:  python examples/citation_analysis.py
"""

from repro import citation_dag, partition, run_dgpm, run_dgpmd, simulation
from repro.bench.workloads import dag_pattern


def main() -> None:
    graph = citation_dag(6000, 13000, n_labels=24, seed=7)
    fragmentation = partition(graph, n_fragments=8, seed=7, vf_ratio=0.25)
    print(f"citation DAG: |V|={graph.n_nodes}, |E|={graph.n_edges}, |F|=8")
    print(f"{'d':>2} {'|Q|':>8} {'rounds':>7} {'msgs':>6} {'DS(KB)':>8} {'PT(s)':>8}")

    for d in (2, 3, 4, 5, 6):
        query = dag_pattern(graph, diameter=d, n_nodes=9, n_edges=13, seed=d)
        result = run_dgpmd(query, fragmentation)
        assert result.relation == simulation(query, graph)
        m = result.metrics
        print(
            f"{d:>2} {str(query.shape):>8} {m.n_rounds:>7} {m.n_messages:>6}"
            f" {m.ds_kb:>8.2f} {m.pt_seconds:>8.4f}"
        )

    # rank batching vs fixpoint messaging on the same instance
    query = dag_pattern(graph, diameter=4, n_nodes=9, n_edges=13, seed=4)
    batched = run_dgpmd(query, fragmentation)
    fixpoint = run_dgpm(query, fragmentation)
    assert batched.relation == fixpoint.relation
    print(
        f"\nd=4 query: dGPMd sends {batched.metrics.n_messages} batched messages,"
        f" dGPM sends {fixpoint.metrics.n_messages} single-variable messages"
    )
    print("(Figure 5's 6-vs-12 contrast, at workload scale)")


if __name__ == "__main__":
    main()
