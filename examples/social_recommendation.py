#!/usr/bin/env python
"""The paper's running example: finding beer-ad audiences in a social graph.

Recreates Figure 1 end to end: a geo-distributed recommendation network over
three sites, the cyclic pattern a beer brand would pose ("Youtube users who
favor beer ads, trusted by food lovers and world-cup fans who form a
recommendation cycle"), and the dGPM evaluation with its Boolean-equation
partial answers (Example 6) printed the way the paper prints them.

Run:  python examples/social_recommendation.py
"""

from repro import DgpmConfig, run_dgpm, simulation
from repro.core.state import LocalEvalState
from repro.graph.examples import example8_graph, figure1, figure1_fragmentation


def show_equations(site_name, state) -> None:
    equations = state.in_node_equations()
    print(f"  {site_name} in-node equations (Example 6):")
    for (u, v), expr in sorted(equations.items(), key=repr):
        print(f"    X({u},{v}) = {expr!r}")


def main() -> None:
    query, graph, fragmentation = figure1()
    print("=== Figure 1: who should see the beer campaign? ===")
    print(f"graph: {graph.n_nodes} users over {fragmentation.n_fragments} sites")
    print(f"query: cycle SP->YF->F->SP plus the YB hub, |Q|={query.shape}")

    # The per-site partial evaluation (phase 1 of dGPM): each site reduces
    # its in-node variables to equations over virtual-node variables only.
    for fid, name in enumerate(["S1", "S2", "S3"]):
        state = LocalEvalState(fragmentation[fid], query)
        state.run_initial()
        show_equations(name, state)

    result = run_dgpm(query, fragmentation)
    print(f"\ndGPM: {result.metrics.describe()}")
    print("audience found:")
    for u in ("YB", "F", "YF", "SP"):
        print(f"  {u}: {sorted(result.relation.matches_of(u))}")
    assert result.relation == simulation(query, graph)

    # Example 8: drop one trust edge and the whole campaign audience
    # evaporates -- falsifications cascade around the recommendation cycle.
    print("\n=== Example 8: remove the edge (f2 -> sp1) ===")
    broken = example8_graph()
    broken_frag = figure1_fragmentation(broken)
    result8 = run_dgpm(query, broken_frag, DgpmConfig(enable_push=False))
    print(f"dGPM: {result8.metrics.describe()}")
    print(f"does anyone match now? {result8.is_match}")
    assert not result8.is_match


if __name__ == "__main__":
    main()
