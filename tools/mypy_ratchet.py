#!/usr/bin/env python3
"""Run mypy and ratchet its error inventory against a committed baseline.

The typing story is incremental: a few strict islands (see ``[tool.mypy]``
in ``pyproject.toml``) plus a frozen inventory of accepted errors for the
rest.  This wrapper enforces the ratchet direction:

* an error NOT in ``tools/mypy_baseline.txt`` fails the run (new debt);
* a baseline line matching nothing is reported as stale (fixable shrink);
* error lines are normalized (column numbers stripped) so small edits don't
  churn the baseline.

Bootstrap: the committed baseline starts with ``# seeded: false``.  While
unseeded, the run never fails -- it prints the full inventory and writes it
to ``tools/mypy_baseline.candidate.txt`` so a CI artifact / local run can
seed the real baseline (flip the header to ``# seeded: true`` after
reviewing).  This keeps the job honest on machines where mypy cannot run
today without letting an unreviewed inventory silently become the contract.

Exit codes: 0 clean/bootstrap, 1 new errors, 2 could not run.
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path
from typing import List, Tuple

REPO = Path(__file__).resolve().parent.parent
BASELINE = REPO / "tools" / "mypy_baseline.txt"
CANDIDATE = REPO / "tools" / "mypy_baseline.candidate.txt"

#: "path:line:col: error: msg" -> "path: error: msg" (line and column drift)
_LOCATION = re.compile(r"^(?P<path>[^:]+):\d+(:\d+)?: (?P<rest>(error|note): .*)$")


def normalize(line: str) -> str:
    match = _LOCATION.match(line.strip())
    if match is None:
        return line.strip()
    return f"{match.group('path')}: {match.group('rest')}"


def run_mypy() -> Tuple[List[str], int]:
    """(normalized error lines, mypy exit code); only 'error:' lines kept."""
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--no-error-summary", "src/repro"],
        cwd=REPO,
        capture_output=True,
        text=True,
    )
    errors = sorted(
        normalize(line)
        for line in proc.stdout.splitlines()
        if ": error: " in line
    )
    return errors, proc.returncode


def load_baseline() -> Tuple[bool, List[str]]:
    """(seeded?, accepted lines).  Missing file == unseeded and empty."""
    if not BASELINE.exists():
        return False, []
    seeded = False
    lines: List[str] = []
    for raw in BASELINE.read_text(encoding="utf-8").splitlines():
        line = raw.strip()
        if line.startswith("# seeded:"):
            seeded = line.split(":", 1)[1].strip().lower() == "true"
        elif line and not line.startswith("#"):
            lines.append(line)
    return seeded, lines


def main() -> int:
    try:
        import mypy  # noqa: F401
    except ImportError:
        # mypy is a CI-only dependency; a machine without it cannot move the
        # ratchet either way.
        print("mypy-ratchet: mypy is not installed; skipping (CI installs it)")
        return 0

    errors, code = run_mypy()
    if code not in (0, 1):  # 2 == mypy crashed / bad config
        print(f"mypy-ratchet: mypy exited {code}; configuration problem?")
        return 2

    seeded, accepted = load_baseline()
    if not seeded:
        CANDIDATE.write_text(
            "\n".join(errors) + ("\n" if errors else ""), encoding="utf-8"
        )
        for line in errors:
            print(line)
        print(
            f"mypy-ratchet: baseline not seeded; {len(errors)} error(s) "
            f"recorded in {CANDIDATE.relative_to(REPO)} (review, copy into "
            "tools/mypy_baseline.txt, set '# seeded: true' to arm the ratchet)"
        )
        return 0

    fresh = [e for e in errors if e not in set(accepted)]
    stale = [a for a in accepted if a not in set(errors)]
    for line in fresh:
        print(line)
    for line in stale:
        print(f"mypy-ratchet: stale baseline entry (remove it): {line}")
    print(
        f"mypy-ratchet: {len(errors)} error(s): {len(fresh)} new, "
        f"{len(errors) - len(fresh)} baselined, {len(stale)} stale"
    )
    return 1 if fresh else 0


if __name__ == "__main__":
    sys.exit(main())
