"""Shared fixtures for the test suite."""

from __future__ import annotations

import random
import zlib

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.pattern import Pattern


@pytest.fixture
def rng_seed(request) -> int:
    """Deterministic per-test seed derived from the test's node id.

    Every parametrized case gets its own seed (the node id includes the
    parameters), the derivation is stable across processes (unlike ``hash``
    of a string, which is salted), and the seed is printed so a failure can
    be replayed exactly: ``random.Random(<printed seed>)``.
    """
    seed = zlib.crc32(request.node.nodeid.encode("utf-8"))
    print(f"[rng] {request.node.nodeid} seed={seed}")
    return seed


@pytest.fixture
def rng(rng_seed) -> random.Random:
    """A :class:`random.Random` seeded per test via ``rng_seed``.

    Use this instead of bare ``random.Random(0)`` in randomized/metamorphic
    suites: failures replay from the printed seed, and distinct tests stop
    sharing (and silently depending on) one hard-coded stream.
    """
    return random.Random(rng_seed)


@pytest.fixture
def triangle_graph() -> DiGraph:
    """A 3-cycle A -> B -> C -> A with one dangling D node."""
    return DiGraph(
        {"a": "A", "b": "B", "c": "C", "d": "D"},
        [("a", "b"), ("b", "c"), ("c", "a"), ("c", "d")],
    )


@pytest.fixture
def triangle_query() -> Pattern:
    """The pattern matching the 3-cycle."""
    return Pattern({"qa": "A", "qb": "B", "qc": "C"}, [("qa", "qb"), ("qb", "qc"), ("qc", "qa")])


@pytest.fixture
def chain_graph() -> DiGraph:
    """A labeled chain x0 -> x1 -> ... -> x5 with alternating labels."""
    labels = {f"x{i}": ("E" if i % 2 == 0 else "O") for i in range(6)}
    edges = [(f"x{i}", f"x{i+1}") for i in range(5)]
    return DiGraph(labels, edges)


def random_instance(seed: int, max_nodes: int = 25, labels: str = "ABC"):
    """A (graph, pattern) pair used by randomized tests."""
    rng = random.Random(seed)
    n = rng.randint(2, max_nodes)
    graph = DiGraph({i: rng.choice(labels) for i in range(n)})
    for _ in range(rng.randint(0, 4 * n)):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            graph.add_edge(u, v)
    qn = rng.randint(1, 4)
    pattern = Pattern(
        {i: rng.choice(labels) for i in range(qn)},
        [(rng.randrange(qn), rng.randrange(qn)) for _ in range(rng.randint(0, 2 * qn))],
    )
    return graph, pattern
