"""Unit tests for the partitioning strategies."""

import pytest

from repro.errors import FragmentationError
from repro.graph import algorithms
from repro.graph.generators import (
    contiguous_block_assignment,
    random_labeled_graph,
    random_tree,
    web_graph,
)
from repro.partition import (
    balanced_bfs_partition,
    fragment_graph,
    hash_partition,
    random_partition,
    refine_to_vf_ratio,
    tree_partition,
)
from repro.partition.metrics import partition_stats


@pytest.fixture(scope="module")
def graph():
    return web_graph(1500, 7000, seed=4)


class TestBasicPartitioners:
    @pytest.mark.parametrize("fn", [hash_partition, random_partition, balanced_bfs_partition])
    def test_valid_and_covering(self, fn, graph):
        frag = fn(graph, 6, seed=1)
        frag.validate()
        assert frag.n_fragments == 6

    @pytest.mark.parametrize("fn", [hash_partition, random_partition, balanced_bfs_partition])
    def test_deterministic(self, fn, graph):
        a = fn(graph, 4, seed=2)
        b = fn(graph, 4, seed=2)
        assert {v: a.owner(v) for v in graph.nodes()} == {v: b.owner(v) for v in graph.nodes()}

    def test_random_partition_balanced(self, graph):
        frag = random_partition(graph, 5, seed=1)
        sizes = [f.n_local_nodes for f in frag]
        assert max(sizes) - min(sizes) <= 1

    def test_bfs_partition_cuts_less_than_random(self, graph):
        bfs = balanced_bfs_partition(graph, 6, seed=1)
        rnd = random_partition(graph, 6, seed=1)
        assert bfs.n_crossing_edges < rnd.n_crossing_edges

    @pytest.mark.parametrize("fn", [hash_partition, random_partition, balanced_bfs_partition])
    def test_too_few_nodes_rejected(self, fn):
        tiny = random_labeled_graph(3, 3, seed=1)
        with pytest.raises(FragmentationError):
            fn(tiny, 10)


class TestRefinement:
    def test_raises_ratio_to_target(self, graph):
        base = fragment_graph(graph, contiguous_block_assignment(graph, 6))
        assert base.vf_ratio < 0.25
        refined = refine_to_vf_ratio(base, 0.40, seed=2)
        refined.validate()
        assert refined.vf_ratio == pytest.approx(0.40, abs=0.05)

    def test_preserves_fragment_count_and_rough_balance(self, graph):
        base = fragment_graph(graph, contiguous_block_assignment(graph, 6))
        refined = refine_to_vf_ratio(base, 0.45, seed=2)
        assert refined.n_fragments == 6
        stats = partition_stats(refined)
        assert stats.balance <= 2.5

    def test_noop_when_already_at_target(self, graph):
        base = fragment_graph(graph, contiguous_block_assignment(graph, 6))
        refined = refine_to_vf_ratio(base, base.vf_ratio, seed=2)
        assert refined.vf_ratio == pytest.approx(base.vf_ratio, abs=0.03)

    def test_graph_unchanged(self, graph):
        base = fragment_graph(graph, contiguous_block_assignment(graph, 6))
        refined = refine_to_vf_ratio(base, 0.5, seed=2)
        assert refined.graph is graph


class TestTreePartition:
    def test_connected_subtrees(self):
        tree = random_tree(400, seed=5)
        frag = tree_partition(tree, 10, seed=1)
        frag.validate()
        assert frag.has_connected_fragments()

    def test_each_fragment_at_most_one_in_node(self):
        tree = random_tree(300, seed=6)
        frag = tree_partition(tree, 8, seed=1)
        for f in frag:
            assert len(f.in_nodes) <= 1

    def test_virtual_nodes_are_subtree_roots(self):
        tree = random_tree(200, seed=7)
        frag = tree_partition(tree, 6, seed=1)
        all_in = set().union(*(f.in_nodes for f in frag))
        for f in frag:
            assert f.virtual_nodes <= all_in

    def test_fragment_count(self):
        tree = random_tree(100, seed=8)
        for n in (1, 4, 9):
            assert tree_partition(tree, n, seed=1).n_fragments == n

    def test_too_many_fragments_rejected(self):
        tree = random_tree(5, seed=9)
        with pytest.raises(FragmentationError):
            tree_partition(tree, 10)


class TestStats:
    def test_describe_contains_key_figures(self, graph):
        frag = random_partition(graph, 4, seed=1)
        stats = partition_stats(frag)
        text = stats.describe()
        assert "|F|=4" in text
        assert "|Vf|=" in text
        assert stats.n_nodes == graph.n_nodes
        assert 0.0 <= stats.vf_ratio <= 1.0
