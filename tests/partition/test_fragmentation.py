"""Unit tests for fragments and fragmentations (Section 2.2)."""

import pytest

from repro.errors import FragmentationError
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_labeled_graph
from repro.partition.fragmentation import fragment_graph
from repro.runtime.costmodel import DEFAULT_COST


@pytest.fixture
def small_graph() -> DiGraph:
    return DiGraph(
        {1: "A", 2: "B", 3: "C", 4: "A", 5: "B"},
        [(1, 2), (2, 3), (3, 4), (4, 5), (5, 1), (2, 4)],
    )


@pytest.fixture
def small_frag(small_graph):
    return fragment_graph(small_graph, {1: 0, 2: 0, 3: 1, 4: 1, 5: 1})


class TestFragmentGraph:
    def test_partition_of_v(self, small_frag):
        assert small_frag[0].local_nodes == frozenset({1, 2})
        assert small_frag[1].local_nodes == frozenset({3, 4, 5})

    def test_virtual_nodes_definition(self, small_frag):
        # F0.O: out-neighbours of {1,2} outside = {3, 4}
        assert small_frag[0].virtual_nodes == frozenset({3, 4})
        # F1.O: out-neighbours of {3,4,5} outside = {1}
        assert small_frag[1].virtual_nodes == frozenset({1})

    def test_in_nodes_definition(self, small_frag):
        assert small_frag[0].in_nodes == frozenset({1})
        assert small_frag[1].in_nodes == frozenset({3, 4})

    def test_union_of_o_equals_union_of_i(self, small_frag):
        all_o = frozenset().union(*(f.virtual_nodes for f in small_frag))
        all_i = frozenset().union(*(f.in_nodes for f in small_frag))
        assert all_o == all_i

    def test_fragment_stores_no_virtual_out_edges(self, small_frag):
        for frag in small_frag:
            for v in frag.virtual_nodes:
                assert frag.graph.successors(v) == []

    def test_crossing_edges(self, small_frag):
        # (3, 4) stays inside fragment 1, so only three edges cross
        assert set(small_frag.crossing_edges()) == {(2, 3), (2, 4), (5, 1)}
        assert small_frag.n_crossing_edges == 3

    def test_vf_and_ratios(self, small_frag):
        assert small_frag.virtual_nodes() == {1, 3, 4}
        assert small_frag.n_virtual_nodes == 3
        assert small_frag.vf_ratio == pytest.approx(3 / 5)
        assert small_frag.ef_ratio == pytest.approx(3 / 6)

    def test_owner_lookup(self, small_frag):
        assert small_frag.owner(1) == 0
        assert small_frag.owner(4) == 1
        with pytest.raises(FragmentationError):
            small_frag.owner(99)

    def test_largest_fragment(self, small_frag):
        assert small_frag.largest_fragment.fid == 1

    def test_fragment_size_measure(self, small_frag):
        f0 = small_frag[0]
        # |V0| = 2 locals; E0 = edges out of locals = (1,2),(2,3),(2,4) = 3
        assert f0.n_local_nodes == 2
        assert f0.n_edges == 3
        assert f0.size == 5

    def test_owner_of_virtual(self, small_frag):
        assert small_frag[0].owner_of_virtual(3) == 1
        assert small_frag[1].owner_of_virtual(1) == 0

    def test_serialized_bytes_positive(self, small_frag):
        assert small_frag[0].local_serialized_bytes(DEFAULT_COST) > 0


class TestValidation:
    def test_valid_fragmentation_passes(self, small_frag):
        small_frag.validate()

    def test_random_fragmentations_validate(self):
        g = random_labeled_graph(120, 500, seed=3)
        for n in (2, 5, 9):
            frag = fragment_graph(g, {v: v % n for v in g.nodes()})
            frag.validate()

    def test_incomplete_assignment_rejected(self, small_graph):
        with pytest.raises(FragmentationError):
            fragment_graph(small_graph, {1: 0, 2: 0})

    def test_empty_fragment_rejected(self, small_graph):
        with pytest.raises(FragmentationError):
            fragment_graph(small_graph, {1: 0, 2: 0, 3: 0, 4: 0, 5: 2})

    def test_foreign_node_rejected(self, small_graph):
        assignment = {1: 0, 2: 0, 3: 1, 4: 1, 5: 1, 99: 0}
        with pytest.raises(FragmentationError):
            fragment_graph(small_graph, assignment)


class TestConnectedFragments:
    def test_connected_check_true(self):
        g = DiGraph({1: "A", 2: "B", 3: "C", 4: "D"}, [(1, 2), (3, 4)])
        frag = fragment_graph(g, {1: 0, 2: 0, 3: 1, 4: 1})
        assert frag.has_connected_fragments()

    def test_connected_check_false(self):
        g = DiGraph({1: "A", 2: "B", 3: "C", 4: "D"}, [(1, 2), (3, 4)])
        frag = fragment_graph(g, {1: 0, 3: 0, 2: 1, 4: 1})
        assert not frag.has_connected_fragments()


class TestInPlaceMutation:
    """The mutation API must keep every Section-2.2 invariant per update."""

    def test_delete_local_edge(self, small_frag):
        delta = small_frag.delete_edge(1, 2)  # both in fragment 0
        assert delta.kind == "delete" and not delta.crossing
        assert not small_frag.graph.has_edge(1, 2)
        assert not small_frag[0].graph.has_edge(1, 2)
        small_frag.validate()

    def test_delete_crossing_edge_updates_boundary_sets(self, small_frag):
        # (2, 3) is the only edge from fragment 0 into node 3.
        delta = small_frag.delete_edge(2, 3)
        assert delta.crossing and delta.virtual_dropped and delta.in_dropped
        assert 3 not in small_frag[0].virtual_nodes
        assert 3 not in small_frag[0].graph  # pruned, not left dangling
        assert 3 not in small_frag[1].in_nodes
        small_frag.validate()

    def test_delete_keeps_shared_virtual(self):
        g = DiGraph(
            {1: "A", 2: "A", 3: "B"}, [(1, 3), (2, 3)]
        )
        frag = fragment_graph(g, {1: 0, 2: 0, 3: 1})
        frag.delete_edge(1, 3)
        # 3 is still reached from node 2 of fragment 0.
        assert 3 in frag[0].virtual_nodes
        assert 3 in frag[1].in_nodes
        frag.validate()

    def test_insert_crossing_edge_creates_boundary_metadata(self, small_frag):
        # Node 5 is not yet pointed at from fragment 0, nor from outside
        # fragment 1, so this crossing edge creates both boundary entries.
        delta = small_frag.insert_edge(1, 5)
        assert delta.crossing and delta.virtual_added and delta.in_added
        assert 5 in small_frag[0].virtual_nodes
        assert small_frag[0].owner_of_virtual(5) == 1
        assert small_frag[0].graph.label(5) == "B"
        assert 5 in small_frag[1].in_nodes
        small_frag.validate()

    def test_insert_to_existing_virtual_adds_no_metadata(self, small_frag):
        delta = small_frag.insert_edge(1, 3)  # 3 already virtual via (2, 3)
        assert delta.crossing and not delta.virtual_added
        small_frag.validate()

    def test_delete_then_reinsert_roundtrips(self, small_frag):
        before_o = set(small_frag[0].virtual_nodes)
        before_i = set(small_frag[1].in_nodes)
        small_frag.delete_edge(2, 3)
        small_frag.insert_edge(2, 3)
        assert set(small_frag[0].virtual_nodes) == before_o
        assert set(small_frag[1].in_nodes) == before_i
        small_frag.validate()

    def test_add_node_joins_fragment(self, small_frag):
        delta = small_frag.add_node(99, "Z", fid=1)
        assert delta.kind == "add_node"
        assert 99 in small_frag[1].local_nodes
        assert small_frag.owner(99) == 1
        small_frag.validate()
        small_frag.insert_edge(1, 99)  # wire it up across fragments
        assert 99 in small_frag[0].virtual_nodes
        small_frag.validate()

    def test_add_node_defaults_to_smallest_fragment(self, small_frag):
        smallest = min(small_frag, key=lambda f: f.size).fid
        delta = small_frag.add_node(77, "Z")
        assert delta.source_fid == smallest

    def test_mutation_errors(self, small_frag):
        from repro.errors import GraphError

        with pytest.raises(GraphError):
            small_frag.delete_edge(1, 3)  # not an edge
        with pytest.raises(GraphError):
            small_frag.insert_edge(1, 2)  # already present
        with pytest.raises(GraphError):
            small_frag.insert_edge(1, 404)  # unknown endpoint
        with pytest.raises(GraphError):
            small_frag.add_node(1, "A")  # already exists
        with pytest.raises(FragmentationError):
            small_frag.add_node(404, "A", fid=9)  # fragment out of range

    def test_random_mutation_sequences_stay_valid(self, rng):
        """validate() holds and patched watcher tables match rebuilt ones
        after long random delete/insert/add_node sequences."""
        from repro.core.depgraph import DependencyGraphs

        g = random_labeled_graph(40, 160, n_labels=4, seed=8)
        frag = fragment_graph(g, {v: v % 4 for v in g.nodes()})
        deps = DependencyGraphs(frag)
        for step in range(150):
            r = rng.random()
            if r < 0.5 and g.n_edges:
                edges = list(g.edges())
                delta = frag.delete_edge(*edges[rng.randrange(len(edges))])
            elif r < 0.9:
                nodes = list(g.nodes())
                u, v = rng.choice(nodes), rng.choice(nodes)
                if g.has_edge(u, v):
                    continue
                delta = frag.insert_edge(u, v)
            else:
                delta = frag.add_node(("fresh", step), f"L{rng.randrange(4)}")
            deps.apply_delta(delta)
            frag.validate()
            fresh = DependencyGraphs(frag)
            assert deps.watchers == fresh.watchers, step
            assert deps.owners == fresh.owners, step
