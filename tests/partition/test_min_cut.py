"""Properties of :func:`min_cut_partition` and the traffic weighting.

The cut-minimizing partitioner is what the online rebalancer trusts with
the live graph, so its contract is checked property-style on arbitrary
graphs: the Section-2.2 invariants hold, no fragment is ever emptied, the
balance cap bounds every *move* (the BFS seed itself may exceed the cap on
tiny graphs -- refinement must never push a fragment further above it), the
cut is never worse than the BFS seed it starts from, and everything is a
pure function of (graph, seed, weights).
"""

import random

from hypothesis import given, settings, strategies as st

from repro.graph.digraph import DiGraph
from repro.graph.generators import web_graph
from repro.partition.fragmentation import fragment_graph
from repro.partition.metrics import partition_stats
from repro.partition.partitioners import (
    balanced_bfs_partition,
    min_cut_partition,
    refine_to_vf_ratio,
    traffic_node_weights,
)


@st.composite
def labeled_graph(draw):
    n = draw(st.integers(min_value=4, max_value=40))
    labels = draw(st.lists(st.sampled_from("ABC"), min_size=n, max_size=n))
    graph = DiGraph({i: labels[i] for i in range(n)})
    for _ in range(draw(st.integers(min_value=0, max_value=3 * n))):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            graph.add_edge(u, v)
    n_frag = draw(st.integers(min_value=1, max_value=min(6, n // 2)))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return graph, n_frag, seed


def _cut_weight(fragmentation, weights=None):
    if weights is None:
        return fragmentation.n_crossing_edges
    return sum(
        (weights.get(u, 1.0) + weights.get(v, 1.0)) / 2.0
        for u, v in fragmentation.crossing_edges()
    )


@settings(max_examples=60, deadline=None)
@given(labeled_graph())
def test_min_cut_satisfies_section_2_2(data):
    graph, n_frag, seed = data
    frag = min_cut_partition(graph, n_frag, seed=seed)
    frag.validate()
    assert frag.n_fragments == n_frag
    assert all(f.n_local_nodes >= 1 for f in frag)


@settings(max_examples=60, deadline=None)
@given(labeled_graph())
def test_min_cut_never_worse_than_bfs_seed(data):
    graph, n_frag, seed = data
    # min_cut derives its BFS start from one rng draw; mirror it exactly.
    rng = random.Random(seed)
    bfs = balanced_bfs_partition(graph, n_frag, seed=rng.randrange(2**31))
    refined = min_cut_partition(graph, n_frag, seed=seed)
    assert refined.n_crossing_edges <= bfs.n_crossing_edges


@settings(max_examples=60, deadline=None)
@given(labeled_graph())
def test_min_cut_moves_respect_balance_cap(data):
    graph, n_frag, seed = data
    balance = 1.25
    rng = random.Random(seed)
    bfs = balanced_bfs_partition(graph, n_frag, seed=rng.randrange(2**31))
    refined = min_cut_partition(graph, n_frag, seed=seed, balance=balance)
    cap = balance * graph.n_nodes / n_frag
    seed_sizes = {f.fid: f.n_local_nodes for f in bfs}
    for f in refined:
        # A fragment may exceed the cap only if the BFS seed already did;
        # refinement moves never push any fragment above max(seed, cap).
        assert f.n_local_nodes <= max(seed_sizes[f.fid], cap) + 1e-9


@settings(max_examples=40, deadline=None)
@given(labeled_graph())
def test_min_cut_is_deterministic_in_seed(data):
    graph, n_frag, seed = data
    a = min_cut_partition(graph, n_frag, seed=seed)
    b = min_cut_partition(graph, n_frag, seed=seed)
    assert {v: a.owner(v) for v in graph.nodes()} == {
        v: b.owner(v) for v in graph.nodes()
    }


def test_min_cut_rejects_slack_free_balance():
    graph = DiGraph({i: "A" for i in range(8)})
    try:
        min_cut_partition(graph, 2, balance=1.0)
    except Exception as exc:
        assert "balance" in str(exc)
    else:  # pragma: no cover
        raise AssertionError("balance=1.0 must be rejected")


def test_min_cut_beats_hash_on_local_web_graph():
    # The smoke-gate scenario in miniature: locality-heavy generator graphs
    # have a low-cut structure hash_partition ignores entirely.
    from repro.partition.partitioners import hash_partition

    g = web_graph(600, 3000, seed=7)
    cut_min = min_cut_partition(g, 8, seed=7).n_crossing_edges
    cut_hash = hash_partition(g, 8, seed=7).n_crossing_edges
    assert cut_min < cut_hash


def test_traffic_weights_spread_fragment_load():
    g = web_graph(200, 800, seed=1)
    frag = min_cut_partition(g, 4, seed=1)
    traffic = {0: 40, 1: 0, 2: 8}
    weights = traffic_node_weights(frag, traffic)
    assert set(weights) == set(g.nodes())
    f0 = next(f for f in frag if f.fid == 0)
    per_node = 40 / f0.n_local_nodes
    assert all(weights[v] == 1.0 + per_node for v in f0.local_nodes)
    f1 = next(f for f in frag if f.fid == 1)
    assert all(weights[v] == 1.0 for v in f1.local_nodes)


def test_traffic_weights_accept_session_stats_and_ignore_overflow():
    from repro.session.session import SessionStats

    g = web_graph(100, 300, seed=2)
    frag = min_cut_partition(g, 4, seed=2)
    stats = SessionStats(
        fragment_queries={0: 5, -1: 1000}, fragment_mutations={0: 3, 1: 2}
    )
    weights = traffic_node_weights(frag, stats)
    f0 = next(f for f in frag if f.fid == 0)
    assert all(weights[v] == 1.0 + 8 / f0.n_local_nodes for v in f0.local_nodes)
    f2 = next(f for f in frag if f.fid == 2)
    assert all(weights[v] == 1.0 for v in f2.local_nodes)


def test_weighted_cut_avoids_hot_region():
    # Make one region hot; the weighted partitioner only takes moves that
    # strictly reduce the *weighted* cut, so measured in those weights it
    # must end at or below the BFS seed both runs start from.
    g = web_graph(300, 1500, seed=3)
    base = min_cut_partition(g, 6, seed=3)
    hottest = max(base, key=lambda f: f.n_local_nodes).fid
    weights = traffic_node_weights(base, {hottest: 500})
    rng = random.Random(3)
    seed_frag = balanced_bfs_partition(g, 6, seed=rng.randrange(2**31))
    weighted = min_cut_partition(g, 6, seed=3, node_weights=weights)
    weighted.validate()
    assert _cut_weight(weighted, weights) <= _cut_weight(seed_frag, weights)


def test_refine_to_vf_ratio_rng_overrides_seed():
    g = web_graph(200, 900, seed=4)
    frag_a = balanced_bfs_partition(g, 4, seed=4)
    frag_b = balanced_bfs_partition(g, 4, seed=4)
    # A caller-owned rng drives the refinement; seed= is ignored when given.
    via_rng = refine_to_vf_ratio(frag_a, 0.5, seed=999, rng=random.Random(11))
    via_seed = refine_to_vf_ratio(frag_b, 0.5, seed=11)
    assert {v: via_rng.owner(v) for v in g.nodes()} == {
        v: via_seed.owner(v) for v in g.nodes()
    }


def test_min_cut_rng_overrides_seed():
    g = web_graph(150, 600, seed=5)
    via_rng = min_cut_partition(g, 4, seed=999, rng=random.Random(21))
    via_seed = min_cut_partition(g, 4, seed=21)
    assert {v: via_rng.owner(v) for v in g.nodes()} == {
        v: via_seed.owner(v) for v in g.nodes()
    }


def test_partition_stats_cut_quality_fields():
    g = web_graph(200, 800, seed=6)
    frag = min_cut_partition(g, 4, seed=6)
    stats = partition_stats(frag)
    assert stats.total_boundary == sum(
        len(f.virtual_nodes) + len(f.in_nodes) for f in frag
    )
    sizes = [f.n_local_nodes for f in frag]
    avg = sum(sizes) / len(sizes)
    assert stats.smallest_fragment_nodes == min(sizes)
    assert abs(stats.imbalance_max - max(abs(s - avg) / avg for s in sizes)) < 1e-12
    assert 0.0 <= stats.imbalance_mean <= stats.imbalance_max
    assert "boundary=" in stats.describe()
