"""Property-based tests for the fragmentation layer.

Invariants of Section 2.2, checked on arbitrary graphs and assignments:
the Fi.O/Fi.I definitions, the ∪O = ∪I identity, crossing-edge consistency,
and reconstructability (the union of fragment-local information recovers G).
"""

from hypothesis import given, settings, strategies as st

from repro.graph.digraph import DiGraph
from repro.partition.fragmentation import fragment_graph


@st.composite
def graph_and_assignment(draw):
    n = draw(st.integers(min_value=2, max_value=20))
    labels = draw(st.lists(st.sampled_from("ABC"), min_size=n, max_size=n))
    graph = DiGraph({i: labels[i] for i in range(n)})
    for _ in range(draw(st.integers(min_value=0, max_value=3 * n))):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            graph.add_edge(u, v)
    n_frag = draw(st.integers(min_value=1, max_value=min(5, n)))
    assignment = {
        i: (i if i < n_frag else draw(st.integers(min_value=0, max_value=n_frag - 1)))
        for i in range(n)
    }
    return graph, assignment


@settings(max_examples=100, deadline=None)
@given(graph_and_assignment())
def test_section_2_2_invariants(data):
    graph, assignment = data
    frag = fragment_graph(graph, assignment)
    frag.validate()  # the full Section-2.2 invariant bundle


@settings(max_examples=100, deadline=None)
@given(graph_and_assignment())
def test_union_of_o_equals_union_of_i(data):
    graph, assignment = data
    frag = fragment_graph(graph, assignment)
    all_o = set().union(*(f.virtual_nodes for f in frag)) if frag.n_fragments else set()
    all_i = set().union(*(f.in_nodes for f in frag)) if frag.n_fragments else set()
    assert all_o == all_i == frag.virtual_nodes()


@settings(max_examples=100, deadline=None)
@given(graph_and_assignment())
def test_crossing_edges_partition_the_cut(data):
    graph, assignment = data
    frag = fragment_graph(graph, assignment)
    expected = {(u, v) for u, v in graph.edges() if assignment[u] != assignment[v]}
    assert set(frag.crossing_edges()) == expected
    # and every crossing edge is stored exactly once (at its source fragment)
    per_fragment = [set(f.crossing_edges()) for f in frag]
    for i, a in enumerate(per_fragment):
        for b in per_fragment[i + 1:]:
            assert not (a & b)


@settings(max_examples=100, deadline=None)
@given(graph_and_assignment())
def test_fragments_reconstruct_the_graph(data):
    """Distribution must lose nothing: fragment-local info recovers G."""
    graph, assignment = data
    frag = fragment_graph(graph, assignment)
    nodes = {}
    edges = set()
    for fragment in frag:
        for v in fragment.local_nodes:
            nodes[v] = fragment.graph.label(v)
        edges.update(fragment.graph.edges())
    assert nodes == dict(graph.labels())
    assert edges == set(graph.edges())


@settings(max_examples=80, deadline=None)
@given(graph_and_assignment())
def test_fragment_sizes_cover_graph(data):
    graph, assignment = data
    frag = fragment_graph(graph, assignment)
    assert sum(f.n_local_nodes for f in frag) == graph.n_nodes
    assert sum(f.graph.n_edges for f in frag) == graph.n_edges
