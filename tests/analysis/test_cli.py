"""The ``python -m repro.analysis`` CLI: exit codes and baseline flow."""

from __future__ import annotations

import json

from repro.analysis.cli import main

#: a tree with exactly one violation (module-level numpy import)
DIRTY = {"bench/helper.py": "import numpy\n"}
CLEAN = {"bench/helper.py": "def f():\n    import numpy\n"}


def make_tree(tmp_path, sources):
    root = tmp_path / "pkg"
    for rel, src in sources.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(src)
    return root


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        root = make_tree(tmp_path, CLEAN)
        code = main(["--root", str(root), "--baseline", str(tmp_path / "b.json")])
        assert code == 0
        assert "0 finding(s)" in capsys.readouterr().err

    def test_dirty_tree_exits_one_and_prints_location(self, tmp_path, capsys):
        root = make_tree(tmp_path, DIRTY)
        code = main(["--root", str(root), "--baseline", str(tmp_path / "b.json")])
        assert code == 1
        out = capsys.readouterr().out
        assert "bench/helper.py:1:0" in out
        assert "[lazy-numpy]" in out

    def test_bad_root_exits_two(self, tmp_path, capsys):
        code = main(["--root", str(tmp_path / "missing")])
        assert code == 2
        assert "analysis error" in capsys.readouterr().err

    def test_unparseable_source_exits_two(self, tmp_path):
        root = make_tree(tmp_path, {"m.py": "def broken(:\n"})
        assert main(["--root", str(root)]) == 2

    def test_corrupt_baseline_exits_two(self, tmp_path):
        root = make_tree(tmp_path, CLEAN)
        baseline = tmp_path / "b.json"
        baseline.write_text("{broken")
        assert main(["--root", str(root), "--baseline", str(baseline)]) == 2


class TestBaselineFlow:
    def test_write_baseline_then_suppressed(self, tmp_path, capsys):
        root = make_tree(tmp_path, DIRTY)
        baseline = tmp_path / "b.json"
        args = ["--root", str(root), "--baseline", str(baseline)]

        assert main(args + ["--write-baseline"]) == 0
        document = json.loads(baseline.read_text())
        assert document["version"] == 1
        assert len(document["suppressions"]) == 1

        capsys.readouterr()
        assert main(args) == 0  # suppressed by the baseline now
        captured = capsys.readouterr()
        assert "1 baselined" in captured.err
        assert "helper.py" not in captured.out

    def test_new_violation_still_fails_with_baseline(self, tmp_path, capsys):
        root = make_tree(tmp_path, DIRTY)
        baseline = tmp_path / "b.json"
        args = ["--root", str(root), "--baseline", str(baseline)]
        assert main(args + ["--write-baseline"]) == 0

        (root / "core").mkdir()
        (root / "core" / "fresh.py").write_text("import numpy as np\n")
        capsys.readouterr()
        assert main(args) == 1
        out = capsys.readouterr().out
        assert "core/fresh.py" in out
        assert "helper.py" not in out  # old one stays suppressed

    def test_stale_entry_reported_once_fixed(self, tmp_path, capsys):
        root = make_tree(tmp_path, DIRTY)
        baseline = tmp_path / "b.json"
        args = ["--root", str(root), "--baseline", str(baseline)]
        assert main(args + ["--write-baseline"]) == 0

        (root / "bench" / "helper.py").write_text(CLEAN["bench/helper.py"])
        capsys.readouterr()
        assert main(args) == 0
        assert "stale baseline entry" in capsys.readouterr().err

    def test_no_baseline_flag_ignores_file(self, tmp_path):
        root = make_tree(tmp_path, DIRTY)
        baseline = tmp_path / "b.json"
        args = ["--root", str(root), "--baseline", str(baseline)]
        assert main(args + ["--write-baseline"]) == 0
        assert main(args + ["--no-baseline"]) == 1


class TestListRules:
    def test_catalogue_printed(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in (
            "lock-discipline",
            "frozen-crossing",
            "lazy-numpy",
            "protocol-exhaustive",
            "determinism",
            "driver-registry",
            "bare-assert",
        ):
            assert rule in out
