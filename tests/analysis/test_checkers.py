"""Every checker: a seeded fixture it must flag, a clean one it must pass."""

from __future__ import annotations

from pathlib import Path

import repro
from repro.analysis.checkers.asserts import BareAssertChecker
from repro.analysis.checkers.determinism import DeterminismChecker
from repro.analysis.checkers.drivers import DriverRegistryChecker
from repro.analysis.checkers.frozen import CrossingType, FrozenCrossingChecker
from repro.analysis.checkers.lazynumpy import LazyNumpyChecker
from repro.analysis.checkers.locks import GuardSpec, LockDisciplineChecker
from repro.analysis.checkers.protocol import (
    ProtocolExhaustivenessChecker,
    ShardCommandChecker,
)
from repro.analysis.project import Project
from repro.analysis.runner import run_analysis


def check(checker, sources):
    return list(checker.check(Project.from_sources(sources)))


class TestLockDiscipline:
    SPEC = (
        GuardSpec(
            class_name="Box",
            attrs=("_items",),
            locks=("self._lock",),
            exempt_methods=("rebuild",),
            why="test fixture",
        ),
    )

    def _checker(self):
        return LockDisciplineChecker(guarded=self.SPEC)

    def test_unguarded_write_flagged(self):
        src = (
            "class Box:\n"
            "    def put(self, k, v):\n"
            "        self._items[k] = v\n"
        )
        findings = check(self._checker(), {"m.py": src})
        assert [f.detail for f in findings] == ["_items"]
        assert findings[0].symbol == "Box.put"

    def test_guarded_write_clean(self):
        src = (
            "class Box:\n"
            "    def put(self, k, v):\n"
            "        with self._lock:\n"
            "            self._items[k] = v\n"
        )
        assert check(self._checker(), {"m.py": src}) == []

    def test_mutator_call_counts_as_write(self):
        src = (
            "class Box:\n"
            "    def drop(self, k):\n"
            "        self._items.pop(k, None)\n"
        )
        assert len(check(self._checker(), {"m.py": src})) == 1

    def test_init_and_exempt_methods_allowed(self):
        src = (
            "class Box:\n"
            "    def __init__(self):\n"
            "        self._items = {}\n"
            "    def rebuild(self):\n"
            "        self._items = {}\n"
        )
        assert check(self._checker(), {"m.py": src}) == []

    def test_closure_inside_guard_still_flagged(self):
        # The with-block wraps the *definition*; the closure body runs later,
        # after the lock is released.
        src = (
            "class Box:\n"
            "    def put(self, k, v):\n"
            "        with self._lock:\n"
            "            def later():\n"
            "                self._items[k] = v\n"
            "            return later\n"
        )
        assert len(check(self._checker(), {"m.py": src})) == 1

    def test_other_class_untouched(self):
        src = (
            "class Other:\n"
            "    def put(self, k, v):\n"
            "        self._items[k] = v\n"
        )
        assert check(self._checker(), {"m.py": src}) == []

    def test_wildcard_spec_covers_setattr(self):
        spec = (
            GuardSpec(
                class_name="Stats", attrs=("*",), locks=("self._lock",), why="t"
            ),
        )
        src = (
            "class Stats:\n"
            "    def bump(self, name):\n"
            "        setattr(self, name, 1)\n"
            "    def ok(self, name):\n"
            "        with self._lock:\n"
            "            setattr(self, name, 1)\n"
        )
        findings = check(LockDisciplineChecker(guarded=spec), {"m.py": src})
        assert [f.symbol for f in findings] == ["Stats.bump"]

    def test_production_registry_guards_the_sharded_pool(self):
        """The coordinator/ring state registered by ISSUE 8 stays covered:
        an unguarded write to any of it is flagged by the default checker."""
        from repro.analysis.checkers.locks import GUARDED

        spec = next(s for s in GUARDED if "_shards" in s.attrs)
        assert {"_ring", "_respawns"} <= set(spec.attrs)
        assert spec.locks == ("self._pool_lock",)
        seeded = (
            "class ConcurrentSessionServer:\n"
            "    def evict(self, handle):\n"
            "        self._shards.remove(handle)\n"
            "        self._ring = None\n"
            "        self._respawns += 1\n"
        )
        findings = check(LockDisciplineChecker(), {"m.py": seeded})
        assert {f.detail for f in findings} == {"_shards", "_ring", "_respawns"}
        clean = seeded.replace(
            "    def evict(self, handle):\n        ",
            "    def evict(self, handle):\n        with self._pool_lock:\n            ",
        ).replace("\n        self._ring", "\n            self._ring").replace(
            "\n        self._respawns", "\n            self._respawns"
        )
        assert check(LockDisciplineChecker(), {"m.py": clean}) == []


class TestFrozenCrossing:
    def test_unfrozen_dataclass_in_frozen_module_flagged(self):
        src = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Frame:\n"
            "    x: int\n"
        )
        checker = FrozenCrossingChecker(
            frozen_modules=("net/protocol.py",), crossing_types=()
        )
        findings = check(checker, {"net/protocol.py": src})
        assert [f.detail for f in findings] == ["Frame"]

    def test_frozen_dataclass_clean(self):
        src = (
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class Frame:\n"
            "    x: int\n"
        )
        checker = FrozenCrossingChecker(
            frozen_modules=("net/protocol.py",), crossing_types=()
        )
        assert check(checker, {"net/protocol.py": src}) == []

    def test_registered_crossing_type_must_be_frozen(self):
        spec = (CrossingType("m.py", "Result", "cached"),)
        checker = FrozenCrossingChecker(frozen_modules=(), crossing_types=spec)
        dirty = "from dataclasses import dataclass\n@dataclass\nclass Result:\n    x: int\n"
        clean = (
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\nclass Result:\n    x: int\n"
        )
        assert len(check(checker, {"m.py": dirty})) == 1
        assert check(checker, {"m.py": clean}) == []

    def test_setattr_style_requires_guard(self):
        spec = (CrossingType("m.py", "Rel", "shared", style="setattr"),)
        checker = FrozenCrossingChecker(frozen_modules=(), crossing_types=spec)
        dirty = "class Rel:\n    pass\n"
        clean = (
            "class Rel:\n"
            "    def __setattr__(self, name, value):\n"
            "        raise AttributeError(name)\n"
        )
        assert len(check(checker, {"m.py": dirty})) == 1
        assert check(checker, {"m.py": clean}) == []

    def test_missing_registered_class_reported(self):
        spec = (CrossingType("m.py", "Vanished", "gone"),)
        checker = FrozenCrossingChecker(frozen_modules=(), crossing_types=spec)
        findings = check(checker, {"m.py": "x = 1\n"})
        assert [f.detail for f in findings] == ["Vanished"]


class TestLazyNumpy:
    def _checker(self):
        return LazyNumpyChecker(allowed=("core/arraystate.py",))

    def test_module_level_import_flagged(self):
        for src in (
            "import numpy\n",
            "import numpy as np\n",
            "from numpy import zeros\n",
            "import numpy.linalg\n",
            "try:\n    import numpy\nexcept ImportError:\n    numpy = None\n",
        ):
            assert len(check(self._checker(), {"core/dgpm.py": src})) == 1, src

    def test_function_level_import_clean(self):
        src = "def f():\n    import numpy as np\n    return np.zeros(1)\n"
        assert check(self._checker(), {"core/dgpm.py": src}) == []

    def test_allowed_module_clean(self):
        assert check(self._checker(), {"core/arraystate.py": "import numpy\n"}) == []


class TestProtocolExhaustiveness:
    PROTOCOL = (
        "import enum\n"
        "class FrameKind(enum.IntEnum):\n"
        "    HELLO = 1\n"
        "    RUN = 2\n"
        "    OBJ = 3\n"
        "class Hello:\n    pass\n"
        "class RunRequest:\n    pass\n"
        "FRAME_CLASSES = {\n"
        "    FrameKind.HELLO: Hello,\n"
        "    FrameKind.RUN: RunRequest,\n"
        "}\n"
    )
    SERVER = "def dispatch(kind):\n    return kind in (FrameKind.HELLO, FrameKind.RUN)\n"
    CLIENT = "def send():\n    return (FrameKind.HELLO, FrameKind.RUN)\n"
    TRANSPORT = "def ship():\n    return FrameKind.OBJ\n"

    def _full_tree(self):
        return {
            "net/protocol.py": self.PROTOCOL,
            "net/server.py": self.SERVER,
            "net/client.py": self.CLIENT,
            "runtime/transport.py": self.TRANSPORT,
        }

    def test_complete_protocol_clean(self):
        assert check(ProtocolExhaustivenessChecker(), self._full_tree()) == []

    def test_missing_codec_entry_flagged(self):
        tree = self._full_tree()
        tree["net/protocol.py"] = self.PROTOCOL.replace(
            "    FrameKind.RUN: RunRequest,\n", ""
        )
        findings = check(ProtocolExhaustivenessChecker(), tree)
        assert any("FRAME_CLASSES" in f.message and f.detail == "RUN" for f in findings)

    def test_missing_server_arm_flagged(self):
        tree = self._full_tree()
        tree["net/server.py"] = "def dispatch(kind):\n    return kind == FrameKind.HELLO\n"
        findings = check(ProtocolExhaustivenessChecker(), tree)
        assert any("dispatch arm" in f.message and f.detail == "RUN" for f in findings)

    def test_missing_client_arm_flagged(self):
        tree = self._full_tree()
        tree["net/client.py"] = "def send():\n    return FrameKind.HELLO\n"
        findings = check(ProtocolExhaustivenessChecker(), tree)
        assert any("client" in f.message and f.detail == "RUN" for f in findings)

    def test_exempt_kind_must_be_used_by_its_owner(self):
        tree = self._full_tree()
        tree["runtime/transport.py"] = "def ship():\n    return None\n"
        findings = check(ProtocolExhaustivenessChecker(), tree)
        assert [f.detail for f in findings] == ["OBJ"]

    def test_absent_protocol_module_is_not_checked(self):
        assert check(ProtocolExhaustivenessChecker(), {"other.py": "x = 1\n"}) == []

    CODEC = (
        "FRAME_STRUCTS = {\n"
        '    "Hello": 1,\n'
        '    "RunRequest": 2,\n'
        "}\n"
    )

    def test_codec_registered_frames_clean(self):
        tree = self._full_tree()
        tree["net/codec.py"] = self.CODEC
        assert check(ProtocolExhaustivenessChecker(), tree) == []

    def test_unregistered_frame_class_flagged(self):
        tree = self._full_tree()
        tree["net/codec.py"] = self.CODEC.replace('    "RunRequest": 2,\n', "")
        findings = check(ProtocolExhaustivenessChecker(), tree)
        assert [f.detail for f in findings] == ["RUN"]
        assert "FRAME_STRUCTS" in findings[0].message

    def test_exempt_kind_needs_no_codec_registration(self):
        # OBJ stays pickled at every version: its absence from the codec
        # registry is the design, not a finding.
        tree = self._full_tree()
        tree["net/codec.py"] = self.CODEC
        assert all(
            f.detail != "OBJ"
            for f in check(ProtocolExhaustivenessChecker(), tree)
        )

    def test_tree_without_codec_skips_the_split_check(self):
        # Fixtures (and old trees) without net/codec.py predate the v2
        # split; the three original arms are still enforced.
        findings = check(ProtocolExhaustivenessChecker(), self._full_tree())
        assert findings == []


class TestShardCommands:
    MP = (
        'SHARD_COMMANDS = ("ping", "stop")\n'
        "def worker(transport):\n"
        "    command, payload = transport.recv()\n"
        '    if command == "ping":\n'
        '        transport.send(("ok", None))\n'
        '    elif command == "stop":\n'
        "        return\n"
    )
    COORDINATOR = (
        "def drive(handle):\n"
        '    handle.request("ping", None)\n'
        '    handle.post("stop", None)\n'
    )

    def _full_tree(self):
        return {
            "runtime/mp.py": self.MP,
            "session/concurrent.py": self.COORDINATOR,
        }

    def test_wired_inventory_clean(self):
        assert check(ShardCommandChecker(), self._full_tree()) == []

    def test_missing_dispatch_arm_flagged(self):
        tree = self._full_tree()
        tree["runtime/mp.py"] = (
            'SHARD_COMMANDS = ("ping", "stop")\n'
            "def worker(transport):\n"
            "    command, payload = transport.recv()\n"
            '    if command == "ping":\n'
            '        transport.send(("ok", None))\n'
        )
        findings = check(ShardCommandChecker(), tree)
        assert any(
            "no dispatch arm" in f.message and f.detail == "stop"
            for f in findings
        )

    def test_missing_sender_flagged(self):
        tree = self._full_tree()
        tree["session/concurrent.py"] = (
            'def drive(handle):\n    handle.request("ping", None)\n'
        )
        findings = check(ShardCommandChecker(), tree)
        assert any(
            "never sent" in f.message and f.detail == "stop" for f in findings
        )

    def test_inventory_literals_do_not_count_as_dispatch(self):
        """The inventory tuple itself must not satisfy the dispatch arm."""
        tree = self._full_tree()
        tree["runtime/mp.py"] = 'SHARD_COMMANDS = ("ping", "stop")\n'
        findings = check(ShardCommandChecker(), tree)
        assert {f.detail for f in findings} == {"ping", "stop"}

    def test_missing_inventory_flagged(self):
        tree = self._full_tree()
        tree["runtime/mp.py"] = "def worker(transport):\n    pass\n"
        findings = check(ShardCommandChecker(), tree)
        assert [f.detail for f in findings] == ["SHARD_COMMANDS"]

    def test_absent_mp_module_is_not_checked(self):
        assert check(ShardCommandChecker(), {"other.py": "x = 1\n"}) == []


class TestDeterminism:
    def test_global_rng_flagged_everywhere(self):
        for src in (
            "import random\nx = random.choice([1, 2])\n",
            "import random\nrandom.seed(0)\n",
            "from random import shuffle\n",
            "import random\nr = random.Random()\n",
        ):
            assert len(check(DeterminismChecker(), {"bench/w.py": src})) == 1, src

    def test_seeded_random_clean(self):
        src = "import random\nrng = random.Random(7)\nx = rng.random()\n"
        assert check(DeterminismChecker(), {"core/a.py": src}) == []

    def test_wallclock_flagged_only_in_engine_dirs(self):
        src = "import time\nt = time.time()\n"
        assert len(check(DeterminismChecker(), {"core/a.py": src})) == 1
        assert len(check(DeterminismChecker(), {"simulation/a.py": src})) == 1
        assert check(DeterminismChecker(), {"bench/a.py": src}) == []

    def test_perf_counter_clean(self):
        src = "import time\nt = time.perf_counter()\n"
        assert check(DeterminismChecker(), {"core/a.py": src}) == []

    def test_from_time_import_time_flagged(self):
        src = "from time import time\n"
        assert len(check(DeterminismChecker(), {"partition/a.py": src})) == 1
        assert check(DeterminismChecker(), {"net/a.py": src}) == []

    def test_partition_bans_every_clock_read(self):
        # partition/ is pure-function-of-inputs: even perf_counter (fine
        # in core/) is a determinism leak there.
        src = "import time\nt = time.perf_counter()\n"
        assert len(check(DeterminismChecker(), {"partition/a.py": src})) == 1
        assert check(DeterminismChecker(), {"core/a.py": src}) == []
        assert len(check(DeterminismChecker(), {"partition/a.py": "import time\nt = time.monotonic()\n"})) == 1

    def test_partition_bans_from_time_imports_wholesale(self):
        src = "from time import perf_counter\n"
        finding = check(DeterminismChecker(), {"partition/a.py": src})
        assert len(finding) == 1 and finding[0].detail == "from-time-strict"
        assert check(DeterminismChecker(), {"core/a.py": src}) == []


class TestDriverRegistry:
    GOOD_DRIVER = (
        "class GoodDriver:\n"
        "    name = 'good'\n"
        "    display_name = 'Good'\n"
        "    engines = ('dict',)\n"
        "    def run(self, session, query, config, engine='dict'):\n"
        "        return None\n"
        "DRIVERS = {d.name: d for d in (GoodDriver(),)}\n"
    )
    ENGINES = "ENGINES = ('dict', 'array')\n"
    SESSION = (
        "def validate(driver, engine):\n"
        "    if engine not in driver.engines:\n"
        "        raise ValueError(engine)\n"
    )

    def _tree(self, driver_src=None, session_src=None):
        return {
            "session/drivers.py": driver_src or self.GOOD_DRIVER,
            "core/arraycompile.py": self.ENGINES,
            "session/session.py": session_src or self.SESSION,
        }

    def test_well_formed_registry_clean(self):
        assert check(DriverRegistryChecker(), self._tree()) == []

    def test_missing_engines_flagged(self):
        bad = self.GOOD_DRIVER.replace("    engines = ('dict',)\n", "")
        findings = check(DriverRegistryChecker(), self._tree(driver_src=bad))
        assert any("engines" in f.message for f in findings)

    def test_unknown_engine_flagged(self):
        bad = self.GOOD_DRIVER.replace("('dict',)", "('dict', 'gpu')")
        findings = check(DriverRegistryChecker(), self._tree(driver_src=bad))
        assert any("'gpu'" in f.message for f in findings)

    def test_run_without_engine_param_flagged(self):
        bad = self.GOOD_DRIVER.replace(
            "def run(self, session, query, config, engine='dict'):",
            "def run(self, session, query, config):",
        )
        findings = check(DriverRegistryChecker(), self._tree(driver_src=bad))
        assert any("engine" in f.message for f in findings)

    def test_duplicate_name_flagged(self):
        dup = (
            "class A:\n"
            "    name = 'x'\n"
            "    display_name = 'A'\n"
            "    engines = ('dict',)\n"
            "    def run(self, session, query, config, engine='dict'):\n"
            "        return None\n"
            "class B:\n"
            "    name = 'x'\n"
            "    display_name = 'B'\n"
            "    engines = ('dict',)\n"
            "    def run(self, session, query, config, engine='dict'):\n"
            "        return None\n"
            "DRIVERS = {d.name: d for d in (A(), B())}\n"
        )
        findings = check(DriverRegistryChecker(), self._tree(driver_src=dup))
        assert any("re-registers" in f.message for f in findings)

    def test_missing_session_gate_flagged(self):
        findings = check(
            DriverRegistryChecker(),
            self._tree(session_src="def validate(driver, engine):\n    pass\n"),
        )
        assert [f.detail for f in findings] == ["session-gate"]


class TestBareAssert:
    def test_assert_flagged(self):
        findings = check(BareAssertChecker(), {"m.py": "def f(x):\n    assert x\n"})
        assert [f.detail for f in findings] == ["assert"]
        assert findings[0].symbol == "f"

    def test_raise_clean(self):
        src = "def f(x):\n    if not x:\n        raise ValueError(x)\n"
        assert check(BareAssertChecker(), {"m.py": src}) == []


class TestRealTreeIsClean:
    def test_package_has_no_findings(self):
        """The committed tree passes every rule (exit-0 contract of CI)."""
        root = Path(repro.__file__).resolve().parent
        findings = run_analysis(Project.load(root))
        assert findings == [], "\n" + "\n".join(f.render() for f in findings)
