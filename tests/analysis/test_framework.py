"""The analysis core: project loading, finding fingerprints, baselines."""

from __future__ import annotations

import json

import pytest

from repro.analysis.baseline import load_baseline, triage, write_baseline
from repro.analysis.findings import Finding, Severity, fingerprints
from repro.analysis.project import (
    AnalysisError,
    Project,
    dotted,
    enclosing_method,
    parent_of,
    symbol_of,
)


class TestProject:
    def test_from_sources_indexes_by_relpath(self):
        project = Project.from_sources({"a/b.py": "x = 1\n", "c.py": "y = 2\n"})
        assert len(project) == 2
        assert project.module("a/b.py") is not None
        assert project.module("missing.py") is None

    def test_parse_error_is_analysis_error(self):
        with pytest.raises(AnalysisError, match="bad.py"):
            Project.from_sources({"bad.py": "def broken(:\n"})

    def test_parent_and_symbol_annotations(self):
        project = Project.from_sources(
            {"m.py": "class C:\n    def f(self):\n        x = 1\n"}
        )
        module = project.module("m.py")
        import ast

        assign = next(n for n in module.walk() if isinstance(n, ast.Assign))
        assert symbol_of(assign) == "C.f"
        func = parent_of(assign)
        assert isinstance(func, ast.FunctionDef)
        method = enclosing_method(assign)
        assert method is func

    def test_closure_write_attributed_to_outer_method(self):
        source = (
            "class C:\n"
            "    def outer(self):\n"
            "        def inner():\n"
            "            self.x = 1\n"
            "        return inner\n"
        )
        project = Project.from_sources({"m.py": source})
        import ast

        assign = next(
            n for n in project.module("m.py").walk() if isinstance(n, ast.Assign)
        )
        assert enclosing_method(assign).name == "outer"

    def test_dotted_renders_lock_expressions(self):
        import ast

        expr = ast.parse("self._rw.write_locked()").body[0].value
        assert dotted(expr) == "self._rw.write_locked()"
        plain = ast.parse("self._lock").body[0].value
        assert dotted(plain) == "self._lock"

    def test_load_skips_pycache(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "junk.py").write_text("syntax error here(\n")
        project = Project.load(tmp_path)
        assert [m.relpath for m in project] == ["ok.py"]

    def test_load_rejects_non_directory(self, tmp_path):
        with pytest.raises(AnalysisError):
            Project.load(tmp_path / "nope")


class TestFingerprints:
    def test_line_independent_and_occurrence_counted(self):
        f1 = Finding("r", "p.py", 10, 0, "m", symbol="C.f", detail="x")
        f2 = Finding("r", "p.py", 20, 0, "m", symbol="C.f", detail="x")
        pairs = fingerprints([f2, f1])
        assert [fp for _, fp in pairs] == [
            "r::p.py::C.f::x#0",
            "r::p.py::C.f::x#1",
        ]
        # Shifting lines does not change the fingerprints.
        moved = fingerprints(
            [
                Finding("r", "p.py", 11, 0, "m", symbol="C.f", detail="x"),
                Finding("r", "p.py", 99, 0, "m", symbol="C.f", detail="x"),
            ]
        )
        assert [fp for _, fp in moved] == [fp for _, fp in pairs]

    def test_render_pins_file_and_line(self):
        f = Finding("rule-x", "a/b.py", 3, 7, "broken thing")
        assert f.render() == "a/b.py:3:7: error[rule-x] broken thing"
        assert f.severity is Severity.ERROR


class TestBaseline:
    def _finding(self, detail="x"):
        return Finding("r", "p.py", 1, 0, "m", symbol="f", detail=detail)

    def test_round_trip_suppresses(self, tmp_path):
        path = tmp_path / "baseline.json"
        findings = [self._finding("a"), self._finding("b")]
        assert write_baseline(path, findings) == 2
        result = triage(findings, load_baseline(path))
        assert not result.fresh
        assert len(result.suppressed) == 2
        assert not result.stale

    def test_fresh_findings_not_matched(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [self._finding("a")])
        result = triage(
            [self._finding("a"), self._finding("new")], load_baseline(path)
        )
        assert [f.detail for f in result.fresh] == ["new"]

    def test_stale_entries_reported(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [self._finding("gone")])
        result = triage([], load_baseline(path))
        assert result.stale == ("r::p.py::f::gone#0",)

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == []

    def test_corrupt_baseline_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("not json at all")
        with pytest.raises(AnalysisError):
            load_baseline(path)
        path.write_text(json.dumps({"version": 99, "suppressions": []}))
        with pytest.raises(AnalysisError):
            load_baseline(path)
        path.write_text(json.dumps({"version": 1, "suppressions": [1, 2]}))
        with pytest.raises(AnalysisError):
            load_baseline(path)
