"""Tests for the sweep harness and CLI plumbing."""

import pytest

from repro.bench.harness import ExperimentSeries, SweepPoint, run_sweep
from repro.core import run_dgpm
from repro.errors import ReproError
from repro.graph.generators import random_labeled_graph
from repro.graph.pattern import Pattern
from repro.partition import random_partition
from repro.runtime.metrics import RunMetrics, RunResult
from repro.simulation.matchrel import MatchRelation


def _instances():
    graph = random_labeled_graph(60, 240, n_labels=3, seed=1)
    q = Pattern({"a": "L0", "b": "L1"}, [("a", "b")])
    return [
        (nf, [q], random_partition(graph, nf, seed=1)) for nf in (2, 4)
    ]


class TestRunSweep:
    def test_produces_point_per_x(self):
        series = run_sweep(
            "t", "|F|", _instances(), {"dGPM": lambda q, f: run_dgpm(q, f)}
        )
        assert [p.x for p in series.points] == [2, 4]
        assert series.algorithms() == ["dGPM"]

    def test_verification_catches_wrong_answers(self):
        def broken(query, fragmentation):
            empty = MatchRelation(query.nodes(), {})
            metrics = RunMetrics("broken", 0.0, 0.0, 0, 0, 0)
            return RunResult(relation=empty, metrics=metrics)

        with pytest.raises(ReproError):
            run_sweep("t", "|F|", _instances(), {"broken": broken})

    def test_verify_off_skips_oracle(self):
        def fast_fake(query, fragmentation):
            rel = MatchRelation(query.nodes(), {u: {0} for u in query.nodes()})
            return RunResult(rel, RunMetrics("x", 1.0, 1.0, 1024, 1, 1))

        series = run_sweep("t", "x", _instances(), {"x": fast_fake}, verify=False)
        assert series.points[0].ds_kb["x"] == pytest.approx(1.0)


class TestSeriesRendering:
    def _series(self):
        s = ExperimentSeries("demo", "|F|")
        s.points = [
            SweepPoint(x=4, pt_seconds={"a": 0.5, "b": 1.0}, ds_kb={"a": 10, "b": 100}),
            SweepPoint(x=8, pt_seconds={"a": 0.25, "b": 1.0}, ds_kb={"a": 12, "b": 100}),
        ]
        return s

    def test_tables_contain_all_columns(self):
        s = self._series()
        pt = s.pt_table()
        assert "|F|" in pt and "a" in pt and "b" in pt
        assert "0.2500" in pt
        ds = s.ds_table()
        assert "100.00" in ds

    def test_render_has_both_panels(self):
        text = self._series().render()
        assert "PT (seconds)" in text
        assert "DS (KB)" in text

    def test_ratio(self):
        s = self._series()
        assert s.ratio("pt_seconds", "b", "a") == pytest.approx((2 + 4) / 2)
        with pytest.raises(ReproError):
            s.ratio("pt_seconds", "zz", "a")


class TestCli:
    def test_list(self, capsys):
        from repro.bench.cli import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "6ab" in out and "impossibility" in out

    def test_unknown_figure(self, capsys):
        from repro.bench.cli import main

        assert main(["--figure", "nope"]) == 2

    def test_help_when_no_args(self, capsys):
        from repro.bench.cli import main

        assert main([]) == 0
        assert "repro-bench" in capsys.readouterr().out

    def test_table1_runs(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.1")
        monkeypatch.setenv("REPRO_QUERY_SEEDS", "1")
        # reset caches so the scale takes effect
        from repro.bench import figures

        figures.yahoo_graph.cache_clear()
        figures.citation_graph.cache_clear()
        figures.partitioned.cache_clear()
        from repro.bench.cli import main

        try:
            assert main(["--figure", "table1"]) == 0
            out = capsys.readouterr().out
            assert "dGPM" in out and "OK" in out
        finally:
            figures.yahoo_graph.cache_clear()
            figures.citation_graph.cache_clear()
            figures.partitioned.cache_clear()
