"""Tests for the report registry and remaining CLI paths."""

import pytest

from repro.bench.report import all_reports, clear_reports, record_report


@pytest.fixture(autouse=True)
def clean_registry():
    clear_reports()
    yield
    clear_reports()


class TestRegistry:
    def test_record_and_snapshot(self):
        record_report("demo", "line1\nline2")
        assert all_reports() == {"demo": "line1\nline2"}

    def test_snapshot_is_a_copy(self):
        record_report("demo", "x")
        snap = all_reports()
        snap["demo"] = "mutated"
        assert all_reports()["demo"] == "x"

    def test_overwrite(self):
        record_report("demo", "v1")
        record_report("demo", "v2")
        assert all_reports()["demo"] == "v2"

    def test_persist_to_directory(self, tmp_path):
        record_report("demo", "persisted", results_dir=tmp_path)
        assert (tmp_path / "demo.txt").read_text() == "persisted\n"

    def test_clear(self):
        record_report("demo", "x")
        clear_reports()
        assert all_reports() == {}


class TestCliScale:
    def test_scale_flag_applies(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        monkeypatch.setenv("REPRO_QUERY_SEEDS", "1")
        from repro.bench import figures
        from repro.bench.cli import main

        try:
            assert main(["--scale", "0.08", "--figure", "impossibility"]) == 0
            import os

            assert os.environ["REPRO_SCALE"] == "0.08"
            out = capsys.readouterr().out
            assert "family (1)" in out
        finally:
            figures.yahoo_graph.cache_clear()
            figures.citation_graph.cache_clear()
            figures.partitioned.cache_clear()

    def test_figure_prefix_normalization(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.08")
        monkeypatch.setenv("REPRO_QUERY_SEEDS", "1")
        from repro.bench import figures
        from repro.bench.cli import main

        figures.yahoo_graph.cache_clear()
        figures.citation_graph.cache_clear()
        figures.partitioned.cache_clear()
        try:
            assert main(["--figure", "figtable1"]) == 0
            assert "Table 1" in capsys.readouterr().out
        finally:
            figures.yahoo_graph.cache_clear()
            figures.citation_graph.cache_clear()
            figures.partitioned.cache_clear()
