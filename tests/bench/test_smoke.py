"""The machine-readable smoke recorder behind CI's BENCH_SMOKE.json."""

from __future__ import annotations

import json

from repro.bench import smoke


def test_record_is_noop_without_env(tmp_path, monkeypatch):
    monkeypatch.delenv(smoke.ENV_VAR, raising=False)
    assert smoke.record_smoke("query_stream", {"ok": True}) is None


def test_record_and_collect_round_trip(tmp_path, monkeypatch):
    monkeypatch.setenv(smoke.ENV_VAR, str(tmp_path / "smoke"))
    a = smoke.record_smoke("query_stream", {"ok": True, "speedup": 2.4})
    b = smoke.record_smoke("net", {"ok": False, "tcp_ratio": 0.3})
    assert a is not None and a.exists()
    assert json.loads(a.read_text())["speedup"] == 2.4

    out = tmp_path / "BENCH_SMOKE.json"
    merged = smoke.collect(tmp_path / "smoke", out)
    assert merged["n_benches"] == 2
    assert set(merged["benches"]) == {"query_stream", "net"}
    assert merged["benches"]["net"]["tcp_ratio"] == 0.3
    assert b is not None

    document = json.loads(out.read_text())
    assert document["benches"]["query_stream"]["ok"] is True
    assert document["python"]


def test_rerecording_overwrites_same_bench(tmp_path, monkeypatch):
    monkeypatch.setenv(smoke.ENV_VAR, str(tmp_path))
    smoke.record_smoke("net", {"ok": False})
    smoke.record_smoke("net", {"ok": True})
    merged = smoke.collect(tmp_path, tmp_path / "out.json")
    assert merged["n_benches"] == 1
    assert merged["benches"]["net"]["ok"] is True


def test_collect_cli(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv(smoke.ENV_VAR, str(tmp_path))
    smoke.record_smoke("updates", {"ok": True})
    out = tmp_path / "merged.json"
    assert smoke.main(["--dir", str(tmp_path), "--out", str(out)]) == 0
    assert "collected 1 bench result(s)" in capsys.readouterr().out
    assert json.loads(out.read_text())["n_benches"] == 1
