"""Tiny-scale integration tests of the figure/experiment definitions.

Each Figure-6 definition is executed at a fraction of the default scale with
narrowed sweeps, checking that the plumbing works (series shape, algorithms
present, verification against the oracle inside run_sweep) without paying
benchmark-scale runtimes.
"""

import pytest

from repro.bench import figures


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.12")
    monkeypatch.setattr(figures, "N_QUERY_SEEDS", 1)
    figures.yahoo_graph.cache_clear()
    figures.citation_graph.cache_clear()
    figures.synthetic_graph.cache_clear()
    figures.scalefree_boundary_graph.cache_clear()
    figures.partitioned.cache_clear()
    yield
    figures.yahoo_graph.cache_clear()
    figures.citation_graph.cache_clear()
    figures.synthetic_graph.cache_clear()
    figures.scalefree_boundary_graph.cache_clear()
    figures.partitioned.cache_clear()


class TestExp1Definitions:
    def test_fig6_ab(self):
        series = figures.fig6_ab_vary_fragments(fragments=(4, 8))
        assert [p.x for p in series.points] == [4, 8]
        assert set(series.algorithms()) == {"dGPM", "disHHK", "dGPMNOpt", "dMes", "Match"}
        assert "PT (seconds)" in series.render()

    def test_fig6_cd(self):
        series = figures.fig6_cd_vary_query(shapes=((4, 8), (5, 10)))
        assert len(series.points) == 2
        assert all(p.ds_kb["Match"] > 0 for p in series.points)

    def test_fig6_ef(self):
        series = figures.fig6_ef_vary_vf(ratios=(0.25, 0.40))
        assert [p.x for p in series.points] == ["0.25", "0.40"]


class TestExp2Definitions:
    def test_fig6_gh(self):
        series = figures.fig6_gh_vary_diameter(diameters=(2, 3))
        assert set(series.algorithms()) == {"dGPMd", "disHHK", "dMes", "Match"}

    def test_fig6_ij(self):
        series = figures.fig6_ij_vary_fragments_dag(fragments=(4, 8))
        assert len(series.points) == 2

    def test_fig6_kl(self):
        series = figures.fig6_kl_vary_vf_dag(ratios=(0.25, 0.40))
        assert all("dGPMd" in p.pt_seconds for p in series.points)


class TestExp3Definitions:
    def test_fig6_mn(self):
        series = figures.fig6_mn_synthetic_fragments(fragments=(4, 8))
        assert "Match" not in series.algorithms()

    def test_fig6_op(self):
        series = figures.fig6_op_synthetic_size(sizes=((1000, 4000), (2000, 8000)))
        assert len(series.points) == 2


class TestReportsAndAudits:
    def test_table1_report(self):
        text = figures.table1_bounds()
        assert "VIOLATED" not in text
        assert "paper: 12" in text

    def test_impossibility_report(self):
        text = figures.impossibility_report(sizes=(4, 8))
        assert "family (1)" in text and "family (2)" in text
        assert "False" not in text  # every row correct

    def test_ablation(self):
        series = figures.ablation_optimizations(thetas=(0.2,))
        assert "dGPMNOpt" in series.algorithms()

    def test_trees(self):
        series = figures.trees_series(fragments=(2, 4))
        assert all(p.n_rounds["dGPMt"] <= 3 for p in series.points)

    def test_scale_helper(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2.0")
        assert figures.scale() == 2.0
        assert figures._n(100) == 200
