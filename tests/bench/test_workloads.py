"""Tests for the benchmark workload generators."""

import pytest

from repro.bench.workloads import cyclic_pattern, dag_pattern, tree_pattern
from repro.errors import WorkloadError
from repro.graph import algorithms
from repro.graph.generators import citation_dag, random_tree, web_graph
from repro.simulation import simulation


@pytest.fixture(scope="module")
def web():
    return web_graph(1200, 6000, seed=2)


@pytest.fixture(scope="module")
def citation():
    return citation_dag(1200, 3000, seed=2)


class TestCyclicPattern:
    @pytest.mark.parametrize("seed", range(6))
    def test_always_matches(self, web, seed):
        q = cyclic_pattern(web, 5, 10, seed=seed)
        assert simulation(q, web).is_match

    @pytest.mark.parametrize("seed", range(6))
    def test_is_cyclic(self, web, seed):
        q = cyclic_pattern(web, 5, 10, seed=seed)
        assert not q.is_dag()

    def test_respects_node_target(self, web):
        q = cyclic_pattern(web, 6, 9, seed=1)
        assert q.n_nodes == 6

    def test_edges_close_to_target(self, web):
        q = cyclic_pattern(web, 5, 10, seed=1)
        assert 5 <= q.n_edges <= 10

    def test_deterministic(self, web):
        assert cyclic_pattern(web, 5, 10, seed=4) == cyclic_pattern(web, 5, 10, seed=4)

    def test_acyclic_graph_rejected(self, citation):
        with pytest.raises(WorkloadError):
            cyclic_pattern(citation, 5, 10, seed=1)


class TestDagPattern:
    @pytest.mark.parametrize("d", [2, 3, 4, 5, 6])
    def test_exact_diameter(self, citation, d):
        q = dag_pattern(citation, d, 9, 13, seed=d)
        assert q.diameter() == d
        assert q.is_dag()

    @pytest.mark.parametrize("d", [2, 4, 6])
    def test_always_matches(self, citation, d):
        q = dag_pattern(citation, d, 9, 13, seed=d)
        assert simulation(q, citation).is_match

    def test_node_target_met_when_spine_allows(self, citation):
        q = dag_pattern(citation, 3, 8, 11, seed=1)
        assert q.n_nodes == 8

    def test_impossible_diameter_rejected(self):
        shallow = citation_dag(50, 60, seed=1, n_layers=2)
        deepest = max(algorithms.topological_ranks(shallow).values())
        with pytest.raises(WorkloadError):
            dag_pattern(shallow, deepest + 5, 9, 13, seed=1, tries=50)


class TestTreePattern:
    def test_matches_and_is_tree_shaped(self):
        tree = random_tree(300, seed=3)
        q = tree_pattern(tree, 4, seed=3)
        assert q.n_nodes == 4
        assert q.is_dag()
        assert simulation(q, tree).is_match

    def test_too_large_rejected(self):
        tree = random_tree(5, seed=3)
        with pytest.raises(WorkloadError):
            tree_pattern(tree, 50, seed=3, tries=10)
