"""Tests for the query-stream serving benchmark machinery (tiny sizes).

Timing-based claims (the >= 2x speedup gate) live in
``benchmarks/bench_query_stream.py``; here we only assert the functional
contract: streams are well-formed, parity holds, hits are counted, and the
report renders.
"""

from __future__ import annotations

from repro import partition, web_graph
from repro.bench.stream import (
    StreamSeries,
    measure_stream_point,
    mixed_query_stream,
    query_stream_series,
)


def test_mixed_stream_shape_and_freshness():
    graph = web_graph(200, 900, n_labels=6, seed=1)
    stream = mixed_query_stream(graph, n_distinct=3, repeat=2, seed=1)
    assert len(stream) == 6
    # Repeats are fresh objects (cache hits must come from canonical hashing).
    assert stream[0] is not stream[3]
    assert stream[0] == stream[3] or stream[0].shape == stream[3].shape


def test_measure_point_parity_and_hits():
    graph = web_graph(250, 1100, n_labels=6, seed=2)
    frag = partition(graph, 3, seed=2)
    stream = mixed_query_stream(graph, n_distinct=2, repeat=3, seed=2)
    point = measure_stream_point(frag, stream, n_distinct=2)
    assert point.parity
    assert point.n_queries == len(stream)
    assert point.cache_hit_rate > 0.0
    assert point.session_seconds > 0.0 and point.oneshot_seconds > 0.0


def test_series_sweep_and_render():
    series = query_stream_series(
        fragment_counts=(2, 3),
        n_nodes=220,
        n_edges=900,
        n_distinct=2,
        repeat=2,
        seed=3,
    )
    assert [p.n_fragments for p in series.points] == [2, 3]
    assert all(p.parity for p in series.points)
    text = series.render()
    assert "|F|" in text and "speedup" in text
    assert isinstance(series, StreamSeries)
