"""Unit tests for the graph algorithm toolbox."""

import pytest

from repro.errors import GraphError
from repro.graph import algorithms
from repro.graph.digraph import DiGraph


def cycle_graph(n: int) -> DiGraph:
    g = DiGraph({i: "N" for i in range(n)})
    for i in range(n):
        g.add_edge(i, (i + 1) % n)
    return g


def chain(n: int) -> DiGraph:
    g = DiGraph({i: "N" for i in range(n)})
    for i in range(n - 1):
        g.add_edge(i, i + 1)
    return g


class TestTarjan:
    def test_cycle_is_one_component(self):
        comps = algorithms.tarjan_scc(cycle_graph(5))
        assert len(comps) == 1
        assert sorted(comps[0]) == [0, 1, 2, 3, 4]

    def test_chain_is_singletons(self):
        comps = algorithms.tarjan_scc(chain(4))
        assert sorted(len(c) for c in comps) == [1, 1, 1, 1]

    def test_completion_order_sinks_first(self):
        # 0 -> 1 -> 2 : component containing 2 must be listed before 1's, etc.
        comps = algorithms.tarjan_scc(chain(3))
        order = [c[0] for c in comps]
        assert order.index(2) < order.index(1) < order.index(0)

    def test_two_cycles_bridged(self):
        g = DiGraph({i: "N" for i in range(6)})
        for i in (0, 1, 2):
            g.add_edge(i, (i + 1) % 3)
        for i in (3, 4, 5):
            g.add_edge(i, 3 + ((i - 3 + 1) % 3))
        g.add_edge(0, 3)  # bridge
        comps = algorithms.tarjan_scc(g)
        sizes = sorted(len(c) for c in comps)
        assert sizes == [3, 3]
        # the downstream cycle (3,4,5) completes first
        assert set(comps[0]) == {3, 4, 5}

    def test_deep_graph_no_recursion_error(self):
        comps = algorithms.tarjan_scc(chain(5000))
        assert len(comps) == 5000


class TestDagAndTopo:
    def test_is_dag(self):
        assert algorithms.is_dag(chain(4))
        assert not algorithms.is_dag(cycle_graph(3))

    def test_self_loop_is_cyclic(self):
        g = DiGraph({0: "N"}, [(0, 0)])
        assert not algorithms.is_dag(g)

    def test_topological_order(self):
        g = DiGraph({i: "N" for i in range(4)}, [(0, 1), (0, 2), (1, 3), (2, 3)])
        order = algorithms.topological_order(g)
        pos = {v: i for i, v in enumerate(order)}
        for u, v in g.edges():
            assert pos[u] < pos[v]

    def test_topological_order_cycle_raises(self):
        with pytest.raises(GraphError):
            algorithms.topological_order(cycle_graph(3))

    def test_topological_ranks_paper_definition(self):
        # Figure 5 ranks: r(u)=0 for sinks, else 1 + max child rank.
        g = DiGraph(
            {"YB1": "YB", "YB2": "YB", "SP": "SP", "YF": "YF", "F": "F", "FB": "FB"},
            [("YB2", "FB"), ("SP", "YB2"), ("YF", "SP"), ("F", "SP"),
             ("YB1", "YF"), ("YB1", "F")],
        )
        ranks = algorithms.topological_ranks(g)
        assert ranks == {"FB": 0, "YB2": 1, "SP": 2, "YF": 3, "F": 3, "YB1": 4}


class TestBfsAndDiameter:
    def test_bfs_layers_directed(self):
        dist = algorithms.bfs_layers(chain(4), [0])
        assert dist == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_bfs_layers_undirected(self):
        dist = algorithms.bfs_layers(chain(4), [3], undirected=True)
        assert dist == {3: 0, 2: 1, 1: 2, 0: 3}

    def test_bfs_unknown_source_raises(self):
        with pytest.raises(GraphError):
            algorithms.bfs_layers(chain(2), ["nope"])

    def test_diameter_chain(self):
        assert algorithms.diameter(chain(5)) == 4

    def test_diameter_cycle(self):
        assert algorithms.diameter(cycle_graph(6)) == 5

    def test_diameter_single_node(self):
        assert algorithms.diameter(DiGraph({0: "N"})) == 0


class TestComponentsAndTrees:
    def test_weakly_connected_components(self):
        g = DiGraph({0: "N", 1: "N", 2: "N", 3: "N"}, [(0, 1), (2, 3)])
        comps = algorithms.weakly_connected_components(g)
        assert sorted(sorted(c) for c in comps) == [[0, 1], [2, 3]]

    def test_is_tree_true(self):
        g = DiGraph({0: "N", 1: "N", 2: "N"}, [(0, 1), (0, 2)])
        assert algorithms.is_tree(g)
        assert algorithms.tree_root(g) == 0

    def test_is_tree_rejects_dag_with_shared_child(self):
        g = DiGraph({0: "N", 1: "N", 2: "N"}, [(0, 2), (1, 2)])
        assert not algorithms.is_tree(g)

    def test_is_tree_rejects_forest(self):
        g = DiGraph({0: "N", 1: "N", 2: "N", 3: "N"}, [(0, 1), (2, 3)])
        assert not algorithms.is_tree(g)

    def test_is_tree_rejects_cycle(self):
        assert not algorithms.is_tree(cycle_graph(3))

    def test_tree_root_raises_on_non_tree(self):
        with pytest.raises(GraphError):
            algorithms.tree_root(cycle_graph(3))

    def test_empty_graph_is_not_tree(self):
        assert not algorithms.is_tree(DiGraph())


class TestCondensationAndReachability:
    def test_condensation_of_two_cycles(self):
        g = DiGraph({i: "N" for i in range(6)})
        for i in (0, 1, 2):
            g.add_edge(i, (i + 1) % 3)
        for i in (3, 4, 5):
            g.add_edge(i, 3 + ((i - 3 + 1) % 3))
        g.add_edge(0, 3)
        dag = algorithms.condensation(g)
        assert dag.n_nodes == 2
        assert dag.n_edges == 1
        assert algorithms.is_dag(dag)

    def test_reachable_from(self):
        g = chain(4)
        assert algorithms.reachable_from(g, [1]) == {1, 2, 3}
        assert algorithms.reachable_from(g, [0]) == {0, 1, 2, 3}
