"""networkx interoperability tests (skipped if networkx is absent)."""

import pytest

networkx = pytest.importorskip("networkx")

from repro.errors import GraphError
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_labeled_graph
from repro.graph.nxinterop import from_networkx, to_networkx


class TestRoundTrip:
    def test_to_and_from(self):
        g = random_labeled_graph(80, 240, seed=9)
        assert from_networkx(to_networkx(g)) == g

    def test_labels_travel(self):
        nx_g = networkx.DiGraph()
        nx_g.add_node(1, label="A")
        nx_g.add_node(2, label="B")
        nx_g.add_edge(1, 2)
        g = from_networkx(nx_g)
        assert g.label(1) == "A"
        assert g.has_edge(1, 2)

    def test_default_label_for_unlabeled_nodes(self):
        nx_g = networkx.DiGraph()
        nx_g.add_node(1)
        g = from_networkx(nx_g, default_label="?")
        assert g.label(1) == "?"

    def test_undirected_rejected(self):
        with pytest.raises(GraphError):
            from_networkx(networkx.Graph())

    def test_against_networkx_algorithms(self):
        # cross-check our Tarjan against networkx's on a random graph
        from repro.graph import algorithms

        g = random_labeled_graph(150, 600, seed=11)
        ours = {frozenset(c) for c in algorithms.tarjan_scc(g)}
        theirs = {
            frozenset(c)
            for c in networkx.strongly_connected_components(to_networkx(g))
        }
        assert ours == theirs
