"""Unit tests for pattern queries."""

import pytest

from repro.errors import PatternError
from repro.graph.digraph import DiGraph
from repro.graph.pattern import Pattern, pattern_from_digraph


class TestConstruction:
    def test_empty_pattern_rejected(self):
        with pytest.raises(PatternError):
            Pattern({})

    def test_edge_with_unknown_node_rejected(self):
        with pytest.raises(PatternError):
            Pattern({"a": "A"}, [("a", "b")])

    def test_shape_and_size(self):
        q = Pattern({"a": "A", "b": "B"}, [("a", "b"), ("b", "a")])
        assert q.shape == (2, 2)
        assert q.size == 4
        assert q.n_nodes == 2
        assert q.n_edges == 2

    def test_labels_and_children(self):
        q = Pattern({"a": "A", "b": "B"}, [("a", "b")])
        assert q.label("a") == "A"
        assert q.children("a") == ["b"]
        assert q.parents("b") == ["a"]
        assert "a" in q
        assert "z" not in q

    def test_from_digraph(self):
        g = DiGraph({"a": "A", "b": "B"}, [("a", "b")])
        q = pattern_from_digraph(g)
        assert q.shape == (2, 1)
        assert q.label("a") == "A"


class TestDagProperties:
    def test_cycle_is_not_dag(self):
        q = Pattern({"a": "A", "b": "B"}, [("a", "b"), ("b", "a")])
        assert not q.is_dag()

    def test_ranks_on_dag(self):
        q = Pattern({"a": "A", "b": "B", "c": "C"}, [("a", "b"), ("b", "c")])
        assert q.topological_ranks() == {"c": 0, "b": 1, "a": 2}

    def test_ranks_on_cyclic_raises(self):
        q = Pattern({"a": "A", "b": "B"}, [("a", "b"), ("b", "a")])
        with pytest.raises(PatternError):
            q.topological_ranks()

    def test_nodes_by_rank_groups(self):
        q = Pattern(
            {"a": "A", "b": "B", "c": "C", "d": "D"},
            [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")],
        )
        groups = q.nodes_by_rank()
        assert groups[0] == ["d"]
        assert sorted(groups[1]) == ["b", "c"]
        assert groups[2] == ["a"]

    def test_diameter(self):
        q = Pattern({"a": "A", "b": "B", "c": "C"}, [("a", "b"), ("b", "c")])
        assert q.diameter() == 2

    def test_as_digraph_is_copy(self):
        q = Pattern({"a": "A"}, [])
        g = q.as_digraph()
        g.add_node("new", "X")
        assert "new" not in q

    def test_label_alphabet(self):
        q = Pattern({"a": "A", "b": "B", "c": "A"})
        assert q.label_alphabet() == {"A", "B"}

    def test_equality(self):
        q1 = Pattern({"a": "A", "b": "B"}, [("a", "b")])
        q2 = Pattern({"a": "A", "b": "B"}, [("a", "b")])
        q3 = Pattern({"a": "A", "b": "B"}, [("b", "a")])
        assert q1 == q2
        assert q1 != q3
