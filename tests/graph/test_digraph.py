"""Unit tests for the labeled digraph substrate."""

import pytest

from repro.errors import GraphError
from repro.graph.digraph import DiGraph, reify_edge_labels


class TestConstruction:
    def test_empty_graph(self):
        g = DiGraph()
        assert g.n_nodes == 0
        assert g.n_edges == 0
        assert g.size == 0

    def test_bulk_constructor(self):
        g = DiGraph({1: "A", 2: "B"}, [(1, 2)])
        assert g.n_nodes == 2
        assert g.n_edges == 1
        assert g.has_edge(1, 2)

    def test_add_node_relabels_existing(self):
        g = DiGraph({1: "A"})
        g.add_node(1, "B")
        assert g.label(1) == "B"
        assert g.n_nodes == 1

    def test_add_edge_requires_nodes(self):
        g = DiGraph({1: "A"})
        with pytest.raises(GraphError):
            g.add_edge(1, 99)
        with pytest.raises(GraphError):
            g.add_edge(99, 1)

    def test_parallel_edges_collapse(self):
        g = DiGraph({1: "A", 2: "B"}, [(1, 2), (1, 2)])
        assert g.n_edges == 1

    def test_self_loop_allowed(self):
        g = DiGraph({1: "A"}, [(1, 1)])
        assert g.has_edge(1, 1)
        assert g.out_degree(1) == 1
        assert g.in_degree(1) == 1


class TestMutation:
    def test_remove_edge(self):
        g = DiGraph({1: "A", 2: "B"}, [(1, 2)])
        g.remove_edge(1, 2)
        assert g.n_edges == 0
        assert not g.has_edge(1, 2)
        assert g.predecessors(2) == []

    def test_remove_missing_edge_raises(self):
        g = DiGraph({1: "A", 2: "B"})
        with pytest.raises(GraphError):
            g.remove_edge(1, 2)

    def test_remove_node_drops_incident_edges(self):
        g = DiGraph({1: "A", 2: "B", 3: "A"}, [(1, 2), (2, 3), (3, 1)])
        g.remove_node(2)
        assert 2 not in g
        assert g.n_nodes == 2
        assert g.n_edges == 1  # only (3, 1) survives
        assert not g.has_edge(1, 2) and not g.has_edge(2, 3)
        assert g.successors(1) == []

    def test_remove_unknown_node_raises(self):
        g = DiGraph({1: "A"})
        with pytest.raises(GraphError):
            g.remove_node(99)

    def test_lazy_indexes_maintained_across_mutations(self):
        """Edge/node mutations patch the warm indexes instead of dropping
        them; the maintained answers must equal cold-rebuilt ones."""
        g = DiGraph({1: "A", 2: "B", 3: "A", 4: "B"}, [(1, 2), (1, 3), (3, 4)])
        g.warm_indexes()  # build both lazy indexes
        g.add_edge(2, 4)
        g.remove_edge(1, 2)
        g.add_node(5, "B")
        g.add_edge(1, 5)
        g.remove_node(4)
        cold = DiGraph({n: g.label(n) for n in g.nodes()}, g.edges())
        for label in ("A", "B"):
            assert sorted(g.nodes_with_label(label)) == sorted(cold.nodes_with_label(label))
        for node in g.nodes():
            assert dict(g.successor_label_counts(node)) == dict(
                cold.successor_label_counts(node)
            )

    def test_relabel_still_invalidates_indexes(self):
        g = DiGraph({1: "A", 2: "B"}, [(1, 2)])
        g.warm_indexes()
        g.add_node(2, "C")  # relabel: predecessors' counts change wholesale
        assert g.nodes_with_label("C") == [2]
        assert g.nodes_with_label("B") == []
        assert dict(g.successor_label_counts(1)) == {"C": 1}


class TestInspection:
    def test_degrees_and_neighbours(self):
        g = DiGraph({1: "A", 2: "B", 3: "C"}, [(1, 2), (1, 3), (2, 3)])
        assert g.out_degree(1) == 2
        assert g.in_degree(3) == 2
        assert sorted(g.successors(1)) == [2, 3]
        assert sorted(g.predecessors(3)) == [1, 2]

    def test_unknown_node_raises(self):
        g = DiGraph()
        with pytest.raises(GraphError):
            g.label("nope")
        with pytest.raises(GraphError):
            g.successors("nope")
        with pytest.raises(GraphError):
            g.predecessors("nope")

    def test_contains_and_len(self):
        g = DiGraph({1: "A"})
        assert 1 in g
        assert 2 not in g
        assert len(g) == 1

    def test_label_alphabet(self):
        g = DiGraph({1: "A", 2: "B", 3: "A"})
        assert g.label_alphabet() == {"A", "B"}

    def test_nodes_with_label(self):
        g = DiGraph({1: "A", 2: "B", 3: "A"})
        assert sorted(g.nodes_with_label("A")) == [1, 3]

    def test_size_is_nodes_plus_edges(self):
        g = DiGraph({1: "A", 2: "B"}, [(1, 2), (2, 1)])
        assert g.size == 4

    def test_edges_iteration(self):
        g = DiGraph({1: "A", 2: "B"}, [(1, 2), (2, 1)])
        assert set(g.edges()) == {(1, 2), (2, 1)}


class TestDerivedGraphs:
    def test_induced_subgraph(self):
        g = DiGraph({1: "A", 2: "B", 3: "C"}, [(1, 2), (2, 3), (3, 1)])
        sub = g.induced_subgraph([1, 2])
        assert set(sub.nodes()) == {1, 2}
        assert set(sub.edges()) == {(1, 2)}
        assert sub.label(1) == "A"

    def test_reversed(self):
        g = DiGraph({1: "A", 2: "B"}, [(1, 2)])
        rev = g.reversed()
        assert rev.has_edge(2, 1)
        assert not rev.has_edge(1, 2)
        assert rev.label(1) == "A"

    def test_copy_is_independent(self):
        g = DiGraph({1: "A", 2: "B"}, [(1, 2)])
        c = g.copy()
        c.add_node(3, "C")
        c.add_edge(1, 3)
        assert 3 not in g
        assert g.n_edges == 1

    def test_equality_by_structure(self):
        g1 = DiGraph({1: "A", 2: "B"}, [(1, 2)])
        g2 = DiGraph({2: "B", 1: "A"}, [(1, 2)])
        g3 = DiGraph({1: "A", 2: "B"}, [(2, 1)])
        assert g1 == g2
        assert g1 != g3


class TestEdgeLabelReification:
    def test_labeled_edges_become_dummy_nodes(self):
        g = reify_edge_labels({1: "A", 2: "B"}, [(1, 2, "knows")])
        assert g.n_nodes == 3
        assert g.n_edges == 2
        dummy = next(v for v in g.nodes() if v not in (1, 2))
        assert g.label(dummy) == "knows"
        assert g.has_edge(1, dummy)
        assert g.has_edge(dummy, 2)

    def test_unlabeled_edges_stay_direct(self):
        g = reify_edge_labels({1: "A", 2: "B"}, [(1, 2, None)])
        assert g.n_nodes == 2
        assert g.has_edge(1, 2)


class TestReadOnlyLabelsView:
    def test_labels_is_read_only(self):
        g = DiGraph({1: "A", 2: "B"})
        view = g.labels()
        with pytest.raises(TypeError):
            view[3] = "C"

    def test_labels_view_is_live(self):
        g = DiGraph({1: "A"})
        view = g.labels()
        g.add_node(2, "B")
        assert view == {1: "A", 2: "B"}

    def test_labels_view_equals_dict(self):
        g = DiGraph({1: "A", 2: "B"})
        assert dict(g.labels()) == {1: "A", 2: "B"}


class TestLazyIndexes:
    def test_label_index_tracks_relabel(self):
        g = DiGraph({1: "A", 2: "B", 3: "A"})
        assert sorted(g.nodes_with_label("A")) == [1, 3]  # builds the index
        g.add_node(3, "B")  # relabel must invalidate it
        assert sorted(g.nodes_with_label("A")) == [1]
        assert sorted(g.nodes_with_label("B")) == [2, 3]

    def test_label_index_tracks_new_nodes(self):
        g = DiGraph({1: "A"})
        assert g.nodes_with_label("B") == []
        g.add_node(2, "B")
        assert g.nodes_with_label("B") == [2]

    def test_successor_label_counts(self):
        g = DiGraph({1: "A", 2: "B", 3: "B", 4: "C"}, [(1, 2), (1, 3), (1, 4)])
        assert dict(g.successor_label_counts(1)) == {"B": 2, "C": 1}
        assert dict(g.successor_label_counts(2)) == {}

    def test_successor_label_counts_track_mutation(self):
        g = DiGraph({1: "A", 2: "B", 3: "B"}, [(1, 2)])
        assert dict(g.successor_label_counts(1)) == {"B": 1}
        g.add_edge(1, 3)
        assert dict(g.successor_label_counts(1)) == {"B": 2}
        g.remove_edge(1, 2)
        assert dict(g.successor_label_counts(1)) == {"B": 1}

    def test_successor_label_counts_unknown_node(self):
        g = DiGraph({1: "A"})
        with pytest.raises(GraphError):
            g.successor_label_counts(99)

    def test_successor_label_counts_read_only(self):
        g = DiGraph({1: "A", 2: "B"}, [(1, 2)])
        counts = g.successor_label_counts(1)
        with pytest.raises(TypeError):
            counts["B"] = 0


class TestVersionCounter:
    def test_version_bumps_on_mutation(self):
        g = DiGraph()
        v0 = g.version
        g.add_node(1, "A")
        g.add_node(2, "B")
        v_nodes = g.version
        assert v_nodes > v0
        g.add_edge(1, 2)
        v_edge = g.version
        assert v_edge > v_nodes
        g.remove_edge(1, 2)
        assert g.version > v_edge

    def test_noop_mutations_do_not_bump(self):
        g = DiGraph({1: "A", 2: "B"}, [(1, 2)])
        v = g.version
        g.add_node(1, "A")  # same label: no-op
        g.add_edge(1, 2)  # parallel edge: ignored
        assert g.version == v


class TestEdgeMembershipFast:
    def test_has_edge_consistent_after_removal(self):
        g = DiGraph({1: "A", 2: "B", 3: "C"}, [(1, 2), (1, 3)])
        assert g.has_edge(1, 2)
        g.remove_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert g.has_edge(1, 3)
        g.add_edge(1, 2)
        assert g.has_edge(1, 2)
        assert g.n_edges == 2

    def test_dense_construction_dedupes(self):
        g = DiGraph({i: "A" for i in range(50)})
        for _ in range(3):
            for i in range(50):
                for j in range(50):
                    if i != j:
                        g.add_edge(i, j)
        assert g.n_edges == 50 * 49
