"""Unit tests for the synthetic graph generators."""

import pytest

from repro.errors import GraphError
from repro.graph import algorithms
from repro.graph.generators import (
    citation_dag,
    contiguous_block_assignment,
    random_labeled_graph,
    random_tree,
    web_graph,
)


class TestRandomLabeledGraph:
    def test_requested_size(self):
        g = random_labeled_graph(500, 2000, seed=1)
        assert g.n_nodes == 500
        assert g.n_edges == 2000

    def test_label_universe(self):
        g = random_labeled_graph(300, 600, n_labels=5, seed=1)
        assert g.label_alphabet() <= {f"L{i}" for i in range(5)}

    def test_deterministic_in_seed(self):
        a = random_labeled_graph(200, 800, seed=3)
        b = random_labeled_graph(200, 800, seed=3)
        c = random_labeled_graph(200, 800, seed=4)
        assert a == b
        assert a != c

    def test_no_self_loops(self):
        g = random_labeled_graph(100, 400, seed=2)
        assert all(u != v for u, v in g.edges())

    def test_zero_nodes_rejected(self):
        with pytest.raises(GraphError):
            random_labeled_graph(0, 0)

    def test_locality_concentrates_edges(self):
        local = random_labeled_graph(1000, 4000, seed=1, locality=0.95, window=10)
        spread = random_labeled_graph(1000, 4000, seed=1, locality=0.0)
        def short_edges(g):
            return sum(1 for u, v in g.edges() if min(abs(u - v), 1000 - abs(u - v)) <= 10)
        assert short_edges(local) > 3 * short_edges(spread)


class TestWebGraph:
    def test_heavy_tail_in_degree(self):
        g = web_graph(2000, 10000, seed=1)
        degrees = sorted((g.in_degree(v) for v in g.nodes()), reverse=True)
        # scale-free-ish: the top node collects far more than the mean
        assert degrees[0] > 5 * (g.n_edges / g.n_nodes)

    def test_label_skew(self):
        g = web_graph(2000, 6000, n_labels=10, seed=1)
        counts = sorted(
            (len(g.nodes_with_label(lab)) for lab in g.label_alphabet()), reverse=True
        )
        assert counts[0] > 2 * counts[-1]

    def test_block_partition_has_low_boundary(self):
        g = web_graph(2000, 10000, seed=1)
        from repro.partition import fragment_graph

        frag = fragment_graph(g, contiguous_block_assignment(g, 8))
        assert frag.vf_ratio < 0.35


class TestCitationDag:
    def test_is_dag(self):
        g = citation_dag(1000, 3000, seed=2)
        assert algorithms.is_dag(g)

    def test_edges_point_backward_in_time(self):
        g = citation_dag(500, 1500, seed=2)
        assert all(u > v for u, v in g.edges())

    def test_has_long_paths_for_diameter_sweeps(self):
        g = citation_dag(2000, 5000, seed=2)
        # needed by the d=8 query workload of Exp-2
        ranks = algorithms.topological_ranks(g)
        assert max(ranks.values()) >= 8

    def test_too_small_rejected(self):
        with pytest.raises(GraphError):
            citation_dag(1, 0)


class TestRandomTree:
    def test_is_rooted_tree(self):
        t = random_tree(200, seed=3)
        assert algorithms.is_tree(t)
        assert algorithms.tree_root(t) == 0

    def test_max_children_respected(self):
        t = random_tree(300, seed=3, max_children=2)
        assert all(t.out_degree(v) <= 2 for v in t.nodes())

    def test_edge_count(self):
        t = random_tree(50, seed=1)
        assert t.n_edges == 49


class TestBlockAssignment:
    def test_covers_all_nodes_and_fragments(self):
        g = random_labeled_graph(100, 300, seed=1)
        assign = contiguous_block_assignment(g, 7)
        assert set(assign) == set(g.nodes())
        assert set(assign.values()) == set(range(7))

    def test_too_many_fragments_rejected(self):
        g = random_labeled_graph(3, 2, seed=1)
        with pytest.raises(GraphError):
            contiguous_block_assignment(g, 10)
