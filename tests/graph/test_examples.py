"""The paper's running examples, pinned fact by fact.

Every assertion here corresponds to a statement in the paper (Examples 2-10);
these are the ground-truth anchors of the reproduction.
"""

from repro.graph import algorithms
from repro.graph.examples import (
    FIGURE1_EXPECTED_MATCHES,
    example8_graph,
    figure1,
    figure1_fragmentation,
    figure1_graph,
    figure1_query,
    figure2,
    figure2_two_site,
    figure5,
)
from repro.simulation import simulation


class TestFigure1:
    def test_example2_match_relation(self):
        q, g, _ = figure1()
        rel = simulation(q, g)
        assert rel.is_match
        assert rel.as_dict() == FIGURE1_EXPECTED_MATCHES

    def test_example2_f1_not_a_match(self):
        q, g, _ = figure1()
        rel = simulation(q, g)
        assert "f1" not in rel.matches_of("F")
        assert "yb1" not in rel.matches_of("YB")

    def test_example4_fragment_f1(self):
        _, _, frag = figure1()
        f1 = frag[0]
        assert f1.virtual_nodes == frozenset({"f4", "f2", "yf2"})
        assert f1.in_nodes == frozenset({"sp1", "yf1"})
        assert set(f1.crossing_edges()) == {
            ("f1", "f4"), ("yf1", "f2"), ("sp1", "yf2"), ("sp1", "f2"),
        }

    def test_example6_f2_f3_in_nodes(self):
        _, _, frag = figure1()
        assert frag[1].in_nodes == frozenset({"f2", "yf2"})
        assert frag[2].in_nodes == frozenset({"f4", "sp3", "yf3"})

    def test_fragmentation_is_valid(self):
        _, _, frag = figure1()
        frag.validate()

    def test_query_shape(self):
        q = figure1_query()
        assert q.shape == (4, 5)
        assert not q.is_dag()

    def test_example8_no_match_after_edge_removal(self):
        q = figure1_query()
        g = example8_graph()
        assert not g.has_edge("f2", "sp1")
        rel = simulation(q, g)
        assert not rel.is_match

    def test_example8_fragmentation_still_valid(self):
        frag = figure1_fragmentation(example8_graph())
        frag.validate()


class TestFigure2:
    def test_closed_cycle_matches_everything(self):
        q, g, frag = figure2(7)
        frag.validate()
        rel = simulation(q, g)
        assert rel.is_match
        assert len(rel.matches_of("A")) == 7
        assert len(rel.matches_of("B")) == 7

    def test_open_chain_matches_nothing(self):
        q, g, _ = figure2(7, close_cycle=False)
        rel = simulation(q, g)
        assert not rel.is_match

    def test_single_edge_fragments(self):
        _, _, frag = figure2(5)
        assert frag.n_fragments == 5
        for f in frag:
            assert f.n_local_nodes == 2

    def test_constant_fragment_size_as_n_grows(self):
        sizes = set()
        for n in (3, 6, 12):
            _, _, frag = figure2(n)
            sizes.add(frag.largest_fragment.size)
        assert len(sizes) == 1  # |Fm| constant: the Theorem-1(1) setup

    def test_two_site_variant(self):
        q, g, frag = figure2_two_site(6)
        frag.validate()
        assert frag.n_fragments == 2
        labels = {g.label(v) for v in frag[0].local_nodes}
        assert labels == {"A"}


class TestFigure5:
    def test_example9_ranks(self):
        q, _, _ = figure5()
        assert q.topological_ranks() == {
            "FB": 0, "YB2": 1, "SP": 2, "YF": 3, "F": 3, "YB1": 4,
        }

    def test_no_match(self):
        q, g, _ = figure5()
        assert not simulation(q, g).is_match

    def test_no_fb_labeled_data_node(self):
        _, g, _ = figure5()
        assert g.nodes_with_label("FB") == []

    def test_five_fragments(self):
        _, _, frag = figure5()
        frag.validate()
        assert frag.n_fragments == 5

    def test_query_is_dag_with_diameter_4(self):
        q, _, _ = figure5()
        assert q.is_dag()
        assert q.diameter() == 4
