"""The typed mutation vocabulary and its legacy-tuple compatibility shim.

Every layer (session, concurrent front-end, wire protocol, shard workers)
now speaks :class:`~repro.graph.mutations.MutationOp` dataclasses; the old
bare-tuple spelling must keep working for one release -- converted in place
under a :class:`DeprecationWarning` -- and malformed spellings must fail
loudly, distinguishing "known kind, wrong shape" from "unknown kind".
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import ReproError
from repro.graph.mutations import (
    AddNode,
    DeleteEdge,
    InsertEdge,
    MutationOp,
    RemoveNode,
    normalize_op,
    normalize_ops,
)


class TestTypedOps:
    def test_kinds_and_tuples(self):
        assert InsertEdge(1, 2).as_tuple() == ("insert", 1, 2)
        assert DeleteEdge(1, 2).as_tuple() == ("delete", 1, 2)
        assert AddNode(7, "lab").as_tuple() == ("add_node", 7, "lab")
        assert AddNode(7, "lab", 2).as_tuple() == ("add_node", 7, "lab", 2)
        assert RemoveNode(9).as_tuple() == ("remove_node", 9)

    def test_kind_tags(self):
        assert InsertEdge(1, 2).kind == "insert"
        assert DeleteEdge(1, 2).kind == "delete"
        assert AddNode(1, "x").kind == "add_node"
        assert RemoveNode(1).kind == "remove_node"

    def test_ops_are_frozen(self):
        op = InsertEdge(1, 2)
        with pytest.raises(dataclasses.FrozenInstanceError):
            op.u = 5  # type: ignore[misc]

    def test_ops_are_hashable_and_comparable(self):
        assert InsertEdge(1, 2) == InsertEdge(1, 2)
        assert InsertEdge(1, 2) != DeleteEdge(1, 2)
        assert len({RemoveNode(3), RemoveNode(3), RemoveNode(4)}) == 2

    def test_typed_op_passes_through_unwarned(self):
        op = RemoveNode(5)
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert normalize_op(op) is op

    def test_all_ops_subclass_the_base(self):
        for op in (InsertEdge(1, 2), DeleteEdge(1, 2), AddNode(1, "x"),
                   RemoveNode(1)):
            assert isinstance(op, MutationOp)


class TestTupleShim:
    @pytest.mark.parametrize(
        "legacy, expected",
        [
            (("insert", 1, 2), InsertEdge(1, 2)),
            (("delete", 1, 2), DeleteEdge(1, 2)),
            (("add_node", 7, "lab"), AddNode(7, "lab")),
            (("add_node", 7, "lab", 1), AddNode(7, "lab", 1)),
            (("remove_node", 9), RemoveNode(9)),
        ],
    )
    def test_tuples_convert_with_deprecation(self, legacy, expected):
        with pytest.deprecated_call():
            assert normalize_op(legacy) == expected

    def test_lists_accepted_too(self):
        with pytest.deprecated_call():
            assert normalize_op(["delete", 3, 4]) == DeleteEdge(3, 4)

    @pytest.mark.parametrize(
        "bad",
        [
            ("insert", 1),
            ("insert", 1, 2, 3),
            ("delete", 1, 2, 3),
            ("add_node", 7),
            ("remove_node", 9, 10),
        ],
    )
    def test_known_kind_wrong_arity_is_malformed(self, bad):
        with pytest.deprecated_call():
            with pytest.raises(ReproError, match="malformed mutation tuple"):
                normalize_op(bad)

    def test_unknown_kind_named_in_error(self):
        with pytest.deprecated_call():
            with pytest.raises(ReproError, match="unknown update kind 'upsert'"):
                normalize_op(("upsert", 1, 2))

    def test_add_node_fid_must_be_int(self):
        with pytest.deprecated_call():
            with pytest.raises(ReproError, match="fragment id must be an int"):
                normalize_op(("add_node", 7, "lab", "west"))

    @pytest.mark.parametrize("garbage", [42, None, (), object(), (1, 2, 3)])
    def test_non_ops_rejected(self, garbage):
        with pytest.raises(ReproError, match="unsupported mutation op"):
            normalize_op(garbage)

    def test_batch_preserves_order_and_mixes_spellings(self):
        with pytest.deprecated_call():
            ops = normalize_ops(
                [InsertEdge(1, 2), ("delete", 3, 4), RemoveNode(5)]
            )
        assert ops == [InsertEdge(1, 2), DeleteEdge(3, 4), RemoveNode(5)]
