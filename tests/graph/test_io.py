"""Unit tests for graph serialization."""

import pytest

from repro.errors import GraphError
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_labeled_graph
from repro.graph.io import (
    dump_edgelist,
    dump_json,
    load_edgelist,
    load_json,
    serialized_size_bytes,
)


@pytest.fixture
def sample() -> DiGraph:
    return random_labeled_graph(60, 200, seed=5)


class TestJson:
    def test_round_trip(self, sample, tmp_path):
        path = tmp_path / "g.json"
        dump_json(sample, path)
        assert load_json(path, int_ids=True) == sample

    def test_string_ids_by_default(self, tmp_path):
        g = DiGraph({"x": "A", "y": "B"}, [("x", "y")])
        path = tmp_path / "g.json"
        dump_json(g, path)
        assert load_json(path) == g

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(GraphError):
            load_json(tmp_path / "absent.json")

    def test_malformed_file_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(GraphError):
            load_json(path)


class TestEdgelist:
    def test_round_trip(self, sample, tmp_path):
        path = tmp_path / "g.tsv"
        dump_edgelist(sample, path)
        assert load_edgelist(path, int_ids=True) == sample

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(GraphError):
            load_edgelist(tmp_path / "absent.tsv")

    def test_malformed_node_line_raises(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("#node\tonlyid\n")
        with pytest.raises(GraphError):
            load_edgelist(path)

    def test_malformed_edge_line_raises(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("#node\t1\tA\n1\t2\t3\n")
        with pytest.raises(GraphError):
            load_edgelist(path)

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "g.tsv"
        path.write_text("#node\t1\tA\n\n#node\t2\tB\n1\t2\n")
        g = load_edgelist(path, int_ids=True)
        assert g.n_nodes == 2
        assert g.has_edge(1, 2)


class TestSize:
    def test_size_grows_with_graph(self):
        small = random_labeled_graph(50, 100, seed=1)
        big = random_labeled_graph(500, 1000, seed=1)
        assert serialized_size_bytes(big) > 5 * serialized_size_bytes(small)
