"""Tests for strong simulation and subgraph isomorphism (Section 2.1 context)."""

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.examples import figure1
from repro.graph.pattern import Pattern
from repro.simulation import simulation
from repro.simulation.strong import ball, dual_simulation, strong_simulation
from repro.simulation.subiso import (
    find_subgraph_isomorphism,
    has_subgraph_isomorphism,
    subgraph_isomorphisms,
)


class TestDualSimulation:
    def test_dual_is_subset_of_plain(self):
        q, g, _ = figure1()
        plain = simulation(q, g)
        dual = dual_simulation(q, g)
        for u in q.nodes():
            assert dual.raw_matches_of(u) <= plain.raw_matches_of(u)

    def test_parent_condition_prunes(self):
        # b2 has no A-parent, so dual simulation drops it; plain keeps it.
        g = DiGraph({1: "A", 2: "B", 3: "B"}, [(1, 2)])
        q = Pattern({"a": "A", "b": "B"}, [("a", "b")])
        plain = simulation(q, g)
        dual = dual_simulation(q, g)
        # plain simulation keeps 3 (childless query node => label suffices);
        # the dual parent condition prunes it (no A-parent).
        assert plain.matches_of("b") == frozenset({2, 3})
        assert 3 not in dual.raw_matches_of("b")


class TestBall:
    def test_ball_radius_zero_is_center(self):
        g = DiGraph({1: "A", 2: "B"}, [(1, 2)])
        b = ball(g, 1, 0)
        assert set(b.nodes()) == {1}

    def test_ball_is_undirected_neighbourhood(self):
        g = DiGraph({1: "A", 2: "B", 3: "C"}, [(1, 2), (3, 2)])
        b = ball(g, 2, 1)
        assert set(b.nodes()) == {1, 2, 3}


class TestStrongSimulation:
    def test_strong_subset_of_plain(self):
        q, g, _ = figure1()
        plain = simulation(q, g)
        strong = strong_simulation(q, g)
        for u in q.nodes():
            assert strong.raw_matches_of(u) <= plain.raw_matches_of(u)

    def test_strong_misses_long_cycle_matches(self):
        # Section 2.1: strong simulation "may miss potential matches".  On
        # the long A/B cycle, every diameter-1 ball is too small to contain
        # a witness cycle, so strong simulation finds nothing even though
        # plain simulation matches every node.
        from repro.graph.examples import figure2_graph, figure2_query

        q = figure2_query()
        closed = figure2_graph(12)
        assert simulation(q, closed).is_match
        assert not strong_simulation(q, closed).is_match

    def test_strong_matches_tight_cycle(self):
        # ... but a genuine 2-cycle fits inside the ball and is found.
        g = DiGraph({1: "A", 2: "B"}, [(1, 2), (2, 1)])
        q = Pattern({"a": "A", "b": "B"}, [("a", "b"), ("b", "a")])
        rel = strong_simulation(q, g)
        assert rel.is_match
        assert rel.matches_of("a") == frozenset({1})


class TestSubgraphIsomorphism:
    def test_triangle_embeds(self, triangle_graph, triangle_query):
        assert has_subgraph_isomorphism(triangle_query, triangle_graph)
        emb = find_subgraph_isomorphism(triangle_query, triangle_graph)
        assert emb == {"qa": "a", "qb": "b", "qc": "c"}

    def test_injective(self):
        # simulation matches (two query nodes -> one data node) but subiso
        # requires distinct images
        g = DiGraph({1: "A", 2: "B"}, [(1, 2), (2, 1)])
        q = Pattern(
            {"a1": "A", "b1": "B", "a2": "A"},
            [("a1", "b1"), ("b1", "a2")],
        )
        assert simulation(q, g).is_match
        assert not has_subgraph_isomorphism(q, g)

    def test_enumerates_all_embeddings(self):
        g = DiGraph({1: "A", 2: "A", 3: "B"}, [(1, 3), (2, 3)])
        q = Pattern({"a": "A", "b": "B"}, [("a", "b")])
        embeddings = list(subgraph_isomorphisms(q, g))
        assert {frozenset(e.items()) for e in embeddings} == {
            frozenset({("a", 1), ("b", 3)}),
            frozenset({("a", 2), ("b", 3)}),
        }

    def test_example3_locality_contrast(self):
        # Figure 2: subiso on Q0 only needs a 2-hop neighbourhood; the open
        # chain still contains no A<->B cycle, so no embedding exists.
        from repro.graph.examples import figure2_graph, figure2_query

        q = figure2_query()
        assert not has_subgraph_isomorphism(q, figure2_graph(10, close_cycle=False))
        assert has_subgraph_isomorphism(q, DiGraph({1: "A", 2: "B"}, [(1, 2), (2, 1)]))

    def test_subiso_implies_simulation_match(self):
        from tests.conftest import random_instance

        hits = 0
        for seed in range(60):
            graph, pattern = random_instance(seed, max_nodes=10)
            if has_subgraph_isomorphism(pattern, graph):
                hits += 1
                assert simulation(pattern, graph).is_match
        assert hits > 0  # the implication was actually exercised
