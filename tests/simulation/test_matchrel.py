"""Unit tests for the match-relation result type."""

from repro.graph.digraph import DiGraph
from repro.graph.pattern import Pattern
from repro.simulation.matchrel import (
    MatchRelation,
    is_maximum_simulation,
    is_valid_simulation,
)


class TestSemantics:
    def test_boolean_view_true(self):
        rel = MatchRelation(["a", "b"], {"a": {1}, "b": {2}})
        assert rel.is_match
        assert bool(rel)

    def test_empty_query_node_collapses_relation(self):
        # Paper: Q(G) is empty when some query node has no match.
        rel = MatchRelation(["a", "b"], {"a": {1}, "b": set()})
        assert not rel.is_match
        assert rel.as_relation() == set()
        assert rel.matches_of("a") == frozenset()
        # ... but the raw view keeps the diagnostics
        assert rel.raw_matches_of("a") == frozenset({1})

    def test_as_relation_pairs(self):
        rel = MatchRelation(["a"], {"a": {1, 2}})
        assert rel.as_relation() == {("a", 1), ("a", 2)}
        assert len(rel) == 2

    def test_equality_and_hash(self):
        r1 = MatchRelation(["a"], {"a": {1}})
        r2 = MatchRelation(["a"], {"a": {1}})
        r3 = MatchRelation(["a"], {"a": {2}})
        assert r1 == r2
        assert hash(r1) == hash(r2)
        assert r1 != r3

    def test_query_nodes_preserved(self):
        rel = MatchRelation(["a", "b"], {"a": {1}})
        assert list(rel.query_nodes()) == ["a", "b"]


class TestValidityChecker:
    def setup_method(self):
        self.g = DiGraph({1: "A", 2: "B"}, [(1, 2)])
        self.q = Pattern({"a": "A", "b": "B"}, [("a", "b")])

    def test_valid_simulation_accepted(self):
        assert is_valid_simulation(self.q, self.g, {"a": {1}, "b": {2}})

    def test_label_mismatch_rejected(self):
        assert not is_valid_simulation(self.q, self.g, {"a": {2}, "b": {2}})

    def test_missing_child_witness_rejected(self):
        g = DiGraph({1: "A", 2: "B"})  # no edge
        assert not is_valid_simulation(self.q, g, {"a": {1}, "b": {2}})

    def test_empty_relation_is_trivially_valid(self):
        assert is_valid_simulation(self.q, self.g, {})

    def test_maximum_checker_agrees_with_engine(self):
        from repro.simulation import simulation

        rel = simulation(self.q, self.g)
        assert is_maximum_simulation(self.q, self.g, rel)
