"""Unit tests for the centralized simulation engines (naive, HHK, DAG)."""

import pytest

from repro.errors import PatternError
from repro.graph.digraph import DiGraph
from repro.graph.pattern import Pattern
from repro.simulation import dag_simulation, naive_simulation, simulation


class TestBasics:
    def test_single_node_match(self):
        g = DiGraph({1: "A"})
        q = Pattern({"a": "A"})
        for engine in (simulation, naive_simulation, dag_simulation):
            rel = engine(q, g)
            assert rel.is_match
            assert rel.matches_of("a") == frozenset({1})

    def test_label_mismatch_no_match(self):
        g = DiGraph({1: "B"})
        q = Pattern({"a": "A"})
        assert not simulation(q, g).is_match

    def test_child_condition(self, triangle_graph, triangle_query):
        rel = simulation(triangle_query, triangle_graph)
        assert rel.is_match
        assert rel.matches_of("qa") == frozenset({"a"})

    def test_broken_cycle_no_match(self, triangle_graph, triangle_query):
        triangle_graph.remove_edge("c", "a")
        assert not simulation(triangle_query, triangle_graph).is_match

    def test_simulation_is_many_to_many(self):
        # two A nodes both point at the same B: both match
        g = DiGraph({1: "A", 2: "A", 3: "B"}, [(1, 3), (2, 3)])
        q = Pattern({"a": "A", "b": "B"}, [("a", "b")])
        rel = simulation(q, g)
        assert rel.matches_of("a") == frozenset({1, 2})

    def test_chain_truncation(self, chain_graph):
        # query chain longer than any data path from the tail fails there
        q = Pattern({"q0": "E", "q1": "O"}, [("q0", "q1")])
        rel = simulation(q, chain_graph)
        # x4 (E) has the successor x5 (O); x5 itself can't match q0
        assert "x4" in rel.matches_of("q0")
        assert "x5" not in rel.matches_of("q0")


class TestDataLocality:
    def test_figure2_lack_of_locality(self):
        # Example 3: the match of A1 depends on the far end of the chain.
        from repro.graph.examples import figure2_graph, figure2_query

        q = figure2_query()
        closed = figure2_graph(30)
        assert simulation(q, closed).is_match
        open_chain = figure2_graph(30, close_cycle=False)
        # one missing edge n hops away flips every node's verdict
        assert not simulation(q, open_chain).is_match


class TestDagEngine:
    def test_rejects_cyclic_pattern(self):
        q = Pattern({"a": "A", "b": "A"}, [("a", "b"), ("b", "a")])
        g = DiGraph({1: "A"})
        with pytest.raises(PatternError):
            dag_simulation(q, g)

    def test_agrees_with_hhk_on_dag_query(self):
        g = DiGraph({1: "A", 2: "B", 3: "C"}, [(1, 2), (2, 3), (1, 3)])
        q = Pattern({"a": "A", "b": "B", "c": "C"}, [("a", "b"), ("b", "c")])
        assert dag_simulation(q, g) == simulation(q, g)


class TestEngineAgreement:
    @pytest.mark.parametrize("seed", range(30))
    def test_hhk_equals_naive(self, seed):
        from tests.conftest import random_instance

        graph, pattern = random_instance(seed)
        assert simulation(pattern, graph) == naive_simulation(pattern, graph)

    @pytest.mark.parametrize("seed", range(30, 50))
    def test_dag_engine_agrees_when_applicable(self, seed):
        from tests.conftest import random_instance

        graph, pattern = random_instance(seed)
        if pattern.is_dag():
            assert dag_simulation(pattern, graph) == simulation(pattern, graph)
