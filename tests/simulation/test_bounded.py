"""Tests for bounded simulation ([11]'s semantics, an extension module)."""

import pytest

from repro.errors import PatternError
from repro.graph.digraph import DiGraph
from repro.graph.pattern import Pattern
from repro.simulation import simulation
from repro.simulation.bounded import bounded_simulation
from tests.conftest import random_instance


@pytest.fixture
def chain():
    # A -> x -> x -> B   (labels: A, X, X, B)
    return DiGraph(
        {0: "A", 1: "X", 2: "X", 3: "B"},
        [(0, 1), (1, 2), (2, 3)],
    )


class TestSemantics:
    def test_bound_one_equals_plain_simulation(self):
        for seed in range(25):
            graph, pattern = random_instance(seed, max_nodes=14)
            assert bounded_simulation(pattern, graph) == simulation(pattern, graph)

    def test_larger_bound_bridges_paths(self, chain):
        q = Pattern({"a": "A", "b": "B"}, [("a", "b")])
        assert not bounded_simulation(q, chain).is_match  # k=1: no direct edge
        assert not bounded_simulation(q, chain, {("a", "b"): 2}).is_match
        assert bounded_simulation(q, chain, {("a", "b"): 3}).is_match

    def test_unbounded_is_reachability(self, chain):
        q = Pattern({"a": "A", "b": "B"}, [("a", "b")])
        rel = bounded_simulation(q, chain, default_bound=None)
        assert rel.is_match
        assert rel.matches_of("a") == frozenset({0})

    def test_monotone_in_bound(self):
        for seed in range(15):
            graph, pattern = random_instance(seed, max_nodes=12)
            k1 = bounded_simulation(pattern, graph, default_bound=1)
            k3 = bounded_simulation(pattern, graph, default_bound=3)
            for u in pattern.nodes():
                assert k1.raw_matches_of(u) <= k3.raw_matches_of(u)

    def test_cycle_supports_itself_at_any_bound(self):
        g = DiGraph({0: "A", 1: "B"}, [(0, 1), (1, 0)])
        q = Pattern({"a": "A", "b": "B"}, [("a", "b"), ("b", "a")])
        for k in (1, 2, 5, None):
            assert bounded_simulation(q, g, default_bound=k).is_match

    def test_self_reach_requires_cycle(self):
        # a node reaches itself only through a genuine cycle
        g = DiGraph({0: "A"}, [])
        q = Pattern({"a": "A", "a2": "A"}, [("a", "a2")])
        assert not bounded_simulation(q, g, default_bound=None).is_match
        g.add_edge(0, 0)
        assert bounded_simulation(q, g, default_bound=None).is_match


class TestValidation:
    def test_unknown_edge_bound_rejected(self, chain):
        q = Pattern({"a": "A", "b": "B"}, [("a", "b")])
        with pytest.raises(PatternError):
            bounded_simulation(q, chain, {("a", "zzz"): 2})

    def test_nonpositive_bound_rejected(self, chain):
        q = Pattern({"a": "A", "b": "B"}, [("a", "b")])
        with pytest.raises(PatternError):
            bounded_simulation(q, chain, {("a", "b"): 0})

    def test_mixed_bounds(self):
        # one edge strict, one relaxed
        g = DiGraph(
            {0: "A", 1: "B", 2: "X", 3: "C"},
            [(0, 1), (1, 2), (2, 3)],
        )
        q = Pattern({"a": "A", "b": "B", "c": "C"}, [("a", "b"), ("b", "c")])
        rel = bounded_simulation(q, g, {("a", "b"): 1, ("b", "c"): 2})
        assert rel.is_match
        rel_strict = bounded_simulation(q, g, {("a", "b"): 1, ("b", "c"): 1})
        assert not rel_strict.is_match
