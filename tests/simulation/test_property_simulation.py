"""Property-based tests (hypothesis) for the simulation engines.

Invariants checked on arbitrary labeled digraphs and patterns:

* the three engines agree (HHK == naive == DAG-layered when applicable);
* the result is a *valid* simulation (child condition holds);
* the result is *maximal*: no label-compatible pair can be added;
* monotonicity: adding edges to G can only grow the raw match sets;
* the identity witness: a pattern copied from a subgraph of G matches.
"""

from hypothesis import given, settings, strategies as st

from repro.graph.digraph import DiGraph
from repro.graph.pattern import Pattern
from repro.simulation import dag_simulation, naive_simulation, simulation
from repro.simulation.matchrel import is_valid_simulation

LABELS = "AB"


@st.composite
def graphs(draw, max_nodes: int = 10) -> DiGraph:
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    labels = draw(st.lists(st.sampled_from(LABELS), min_size=n, max_size=n))
    graph = DiGraph({i: labels[i] for i in range(n)})
    n_edges = draw(st.integers(min_value=0, max_value=3 * n))
    for _ in range(n_edges):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        graph.add_edge(u, v)
    return graph


@st.composite
def patterns(draw, max_nodes: int = 4) -> Pattern:
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    labels = draw(st.lists(st.sampled_from(LABELS), min_size=n, max_size=n))
    edges = []
    n_edges = draw(st.integers(min_value=0, max_value=2 * n))
    for _ in range(n_edges):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        edges.append((u, v))
    return Pattern({i: labels[i] for i in range(n)}, edges)


@settings(max_examples=120, deadline=None)
@given(graphs(), patterns())
def test_engines_agree(graph, pattern):
    fast = simulation(pattern, graph)
    slow = naive_simulation(pattern, graph)
    assert fast == slow
    if pattern.is_dag():
        assert dag_simulation(pattern, graph) == fast


@settings(max_examples=120, deadline=None)
@given(graphs(), patterns())
def test_result_is_valid_simulation(graph, pattern):
    rel = simulation(pattern, graph)
    raw = {u: rel.raw_matches_of(u) for u in pattern.nodes()}
    assert is_valid_simulation(pattern, graph, raw)


@settings(max_examples=80, deadline=None)
@given(graphs(), patterns())
def test_result_is_maximal(graph, pattern):
    rel = simulation(pattern, graph)
    raw = {u: set(rel.raw_matches_of(u)) for u in pattern.nodes()}
    for u in pattern.nodes():
        want = pattern.label(u)
        for v in graph.nodes():
            if graph.label(v) != want or v in raw[u]:
                continue
            grown = {key: set(vals) for key, vals in raw.items()}
            grown[u].add(v)
            assert not is_valid_simulation(pattern, graph, grown), (
                f"pair ({u}, {v}) could be added: result was not maximal"
            )


@settings(max_examples=80, deadline=None)
@given(graphs(max_nodes=8), patterns(max_nodes=3), st.data())
def test_monotone_in_graph_edges(graph, pattern, data):
    before = simulation(pattern, graph)
    u = data.draw(st.sampled_from(sorted(graph.nodes())))
    v = data.draw(st.sampled_from(sorted(graph.nodes())))
    graph.add_edge(u, v)
    after = simulation(pattern, graph)
    for q in pattern.nodes():
        assert before.raw_matches_of(q) <= after.raw_matches_of(q)


@settings(max_examples=80, deadline=None)
@given(graphs(max_nodes=8), st.data())
def test_identity_witness(graph, data):
    nodes = sorted(graph.nodes())
    k = data.draw(st.integers(min_value=1, max_value=min(4, len(nodes))))
    sample = data.draw(st.permutations(nodes)).copy()[:k]
    sub = graph.induced_subgraph(sample)
    pattern = Pattern(sub.labels(), sub.edges())
    rel = simulation(pattern, graph)
    for v in sample:
        assert v in rel.raw_matches_of(v), "subgraph-copied pattern must match itself"
