"""The shipped standing-query example must actually run.

``examples/subscription_server.py`` audits every PUSH delta against a
replay-at-stamp oracle internally (a delta at every ring-changing stamp,
none at unchanged ones, each folded view equal to a from-scratch
simulation); this test runs it as a real subprocess, the way a user would.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]


def test_subscription_example_runs_clean():
    env = dict(os.environ)
    src = str(REPO / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, str(REPO / "examples" / "subscription_server.py")],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )
    assert proc.returncode == 0, (
        f"example failed\nstdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
    )
    assert "analyst subscribed" in proc.stdout
    assert "legacy v1 client verified against the oracle" in proc.stdout
    assert "audited all" in proc.stdout
    assert "none spurious" in proc.stdout
    assert "server closed cleanly" in proc.stdout
