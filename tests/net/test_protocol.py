"""Wire-protocol properties: encode -> decode is the identity; garbage dies.

The hypothesis block round-trips every frame type with varied payload
content; the rejection block walks every validation branch of the header
and body decoders -- a peer speaking the wrong protocol (or a truncated /
corrupted stream) must fail loudly as :class:`WireFormatError`, never
produce a half-decoded object.
"""

from __future__ import annotations

import pickle
import socket
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    GraphError,
    MutationBatchError,
    TransportError,
    WireFormatError,
)
from repro.graph.pattern import Pattern
from repro.net import protocol
from repro.net.protocol import (
    DEFAULT_MAX_FRAME,
    HEADER_SIZE,
    MAGIC,
    PROTOCOL_VERSION,
    FrameKind,
    decode,
    encode,
)
from repro.runtime.metrics import RunMetrics
from repro.session.concurrent import StampedOutcome
from repro.session.session import MutationOutcome, SessionStats
from repro.simulation.matchrel import MatchRelation

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
SEQS = st.integers(min_value=0, max_value=2**32 - 1)
LABELS = st.sampled_from(["A", "B", "C", "dom0"])
FINITE = st.floats(allow_nan=False, allow_infinity=False, width=32)


@st.composite
def patterns(draw) -> Pattern:
    n = draw(st.integers(min_value=1, max_value=4))
    nodes = [f"u{i}" for i in range(n)]
    labels = {u: draw(LABELS) for u in nodes}
    candidates = [(a, b) for a in nodes for b in nodes if a != b]
    edges = draw(
        st.lists(st.sampled_from(candidates), unique=True, max_size=len(candidates))
        if candidates
        else st.just([])
    )
    return Pattern(labels, edges)


@st.composite
def relations(draw) -> MatchRelation:
    pattern = draw(patterns())
    matches = {
        u: draw(st.sets(st.integers(min_value=0, max_value=50), max_size=5))
        for u in pattern.nodes()
    }
    return MatchRelation(list(pattern.nodes()), matches)


@st.composite
def metrics(draw) -> RunMetrics:
    return RunMetrics(
        algorithm=draw(st.sampled_from(["dgpm", "dgpmd", "dGPM-mp"])),
        pt_seconds=draw(FINITE),
        wall_seconds=draw(FINITE),
        ds_bytes=draw(st.integers(min_value=0, max_value=2**40)),
        n_messages=draw(st.integers(min_value=0, max_value=10**6)),
        n_rounds=draw(st.integers(min_value=0, max_value=10**4)),
        ds_breakdown={"data": draw(st.integers(min_value=0, max_value=2**30))},
    )


@st.composite
def outcomes(draw) -> StampedOutcome:
    return StampedOutcome(
        outcome=MutationOutcome(
            kind=draw(st.sampled_from(["delete", "insert", "add_node"])),
            wall_seconds=draw(FINITE),
            cache_kept=draw(st.integers(min_value=0, max_value=100)),
            cache_repaired=draw(st.integers(min_value=0, max_value=100)),
            cache_evicted=draw(st.integers(min_value=0, max_value=100)),
            falsified=draw(st.integers(min_value=0, max_value=100)),
        ),
        stamp=draw(st.integers(min_value=0, max_value=10**9)),
    )


@st.composite
def stats(draw) -> SessionStats:
    s = SessionStats()
    s.queries_served = draw(st.integers(min_value=0, max_value=10**6))
    s.cache_hits = draw(st.integers(min_value=0, max_value=10**6))
    s.mutations = draw(st.integers(min_value=0, max_value=10**6))
    return s


OPS = st.lists(
    st.one_of(
        st.tuples(st.just("delete"), st.integers(), st.integers()),
        st.tuples(st.just("insert"), st.integers(), st.integers()),
        st.tuples(st.just("add_node"), st.integers(), LABELS),
    ),
    max_size=5,
).map(tuple)

ERRORS = st.one_of(
    st.builds(GraphError, st.text(max_size=20)),
    st.builds(ValueError, st.text(max_size=20)),
    st.builds(
        MutationBatchError,
        st.text(min_size=1, max_size=20),
        st.just([]),
        st.just(("delete", 1, 2)),
    ),
)

FRAMES = st.one_of(
    st.builds(protocol.Hello, role=st.sampled_from(["client", "server", "worker"]),
              token=st.binary(max_size=16)),
    st.builds(
        protocol.RunRequest,
        query=patterns(),
        algorithm=st.sampled_from(["auto", "dgpm", "dmes"]),
        config=st.none(),
    ),
    st.builds(protocol.MutateRequest, ops=OPS),
    st.builds(protocol.StatsRequest),
    st.builds(protocol.Bye),
    st.builds(
        protocol.RunReply,
        relation=relations(),
        metrics=metrics(),
        stamp=st.integers(min_value=0, max_value=10**9),
    ),
    st.builds(protocol.MutateReply, outcomes=st.lists(outcomes(), max_size=3).map(tuple)),
    st.builds(
        protocol.StatsReply,
        stats=stats(),
        stamp=st.integers(min_value=0, max_value=10**9),
        backend=st.sampled_from(["thread", "process"]),
        n_workers=st.integers(min_value=1, max_value=64),
    ),
    ERRORS.map(protocol.ErrorReply.from_exception),
)


# ----------------------------------------------------------------------
# round-trip identity
# ----------------------------------------------------------------------
class TestRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(frame=FRAMES, seq=SEQS)
    def test_encode_decode_identity(self, frame, seq):
        decoded, decoded_seq = decode(encode(frame, seq=seq))
        assert decoded == frame
        assert decoded_seq == seq

    @settings(max_examples=50, deadline=None)
    @given(payload=st.one_of(st.text(), st.tuples(st.text(), st.integers()),
                             st.lists(st.integers(), max_size=4)),
           seq=SEQS)
    def test_obj_frames_round_trip(self, payload, seq):
        """The worker transport's raw-object frames (no typed class)."""
        data = protocol.encode_payload(FrameKind.OBJ, payload, seq=seq)
        decoded, decoded_seq = decode(data)
        assert decoded == payload
        assert decoded_seq == seq

    @settings(max_examples=50, deadline=None)
    @given(error=ERRORS)
    def test_error_reply_reraises_original_type(self, error):
        reply = protocol.ErrorReply.from_exception(error)
        revived = decode(encode(reply))[0].to_exception()
        assert type(revived) is type(error)
        assert str(revived) == str(error)


# ----------------------------------------------------------------------
# rejection paths
# ----------------------------------------------------------------------
def _valid_frame(seq: int = 7) -> bytes:
    return encode(protocol.Hello(role="client"), seq=seq)


class TestRejection:
    def test_bad_magic(self):
        data = b"XXXX" + _valid_frame()[4:]
        with pytest.raises(WireFormatError, match="magic"):
            decode(data)

    def test_wrong_version(self):
        data = bytearray(_valid_frame())
        data[4] = PROTOCOL_VERSION + 1
        with pytest.raises(WireFormatError, match="version"):
            decode(bytes(data))

    def test_unknown_kind(self):
        data = bytearray(_valid_frame())
        data[5] = 200
        with pytest.raises(WireFormatError, match="kind"):
            decode(bytes(data))

    def test_reserved_bits_must_be_zero(self):
        data = bytearray(_valid_frame())
        data[6] = 0xFF
        with pytest.raises(WireFormatError, match="reserved"):
            decode(bytes(data))

    def test_truncated_header(self):
        with pytest.raises(WireFormatError, match="truncated"):
            decode(_valid_frame()[: HEADER_SIZE - 2])

    def test_truncated_body(self):
        with pytest.raises(WireFormatError, match="truncated"):
            decode(_valid_frame()[:-3])

    def test_stray_trailing_bytes(self):
        with pytest.raises(WireFormatError, match="stray"):
            decode(_valid_frame() + b"junk")

    def test_oversized_declared_length(self):
        header = struct.pack(
            ">4sBBHII", MAGIC, PROTOCOL_VERSION, int(FrameKind.HELLO), 0, 1,
            DEFAULT_MAX_FRAME + 1,
        )
        with pytest.raises(WireFormatError, match="oversized"):
            decode(header)

    def test_encode_refuses_oversized_payload(self):
        with pytest.raises(WireFormatError, match="refusing to send"):
            protocol.encode_payload(FrameKind.OBJ, b"x" * 1024, max_frame=64)

    def test_garbage_body(self):
        body = b"\x80notapickleatall"
        header = struct.pack(
            ">4sBBHII", MAGIC, PROTOCOL_VERSION, int(FrameKind.OBJ), 0, 1,
            len(body),
        )
        with pytest.raises(WireFormatError, match="undecodable"):
            decode(header + body)

    def test_payload_type_must_match_kind(self):
        data = protocol.encode_payload(FrameKind.RUN, "not a RunRequest")
        with pytest.raises(WireFormatError, match="expected RunRequest"):
            decode(data)

    def test_encode_rejects_non_frame_objects(self):
        with pytest.raises(WireFormatError, match="not a protocol frame"):
            encode({"kind": "run"})

    def test_error_reply_with_unpicklable_class_degrades(self):
        reply = protocol.ErrorReply(message="boom", kind="Exotic", payload=b"")
        exc = reply.to_exception()
        assert isinstance(exc, TransportError)
        assert "boom" in str(exc)

    def test_error_reply_with_corrupt_payload_degrades(self):
        reply = protocol.ErrorReply(
            message="boom", kind="GraphError", payload=b"corrupt"
        )
        assert isinstance(reply.to_exception(), TransportError)

    def test_error_reply_with_non_exception_payload_degrades(self):
        reply = protocol.ErrorReply(
            message="boom", kind="GraphError", payload=pickle.dumps("a string")
        )
        assert isinstance(reply.to_exception(), TransportError)


# ----------------------------------------------------------------------
# stream adapters
# ----------------------------------------------------------------------
class TestSocketFraming:
    def test_read_frame_round_trip_and_eof(self):
        a, b = socket.socketpair()
        try:
            protocol.write_frame(a, FrameKind.OBJ, ("ping", 1), seq=3)
            kind, seq, payload = protocol.read_frame(b)
            assert (kind, seq, payload) == (FrameKind.OBJ, 3, ("ping", 1))
            a.close()
            with pytest.raises(EOFError):
                protocol.read_frame(b)
        finally:
            a.close()
            b.close()

    def test_read_frame_mid_frame_close_is_transport_error(self):
        a, b = socket.socketpair()
        try:
            data = protocol.encode_payload(FrameKind.OBJ, "partial", seq=1)
            a.sendall(data[: len(data) - 2])
            a.close()
            with pytest.raises(TransportError, match="mid-frame"):
                protocol.read_frame(b)
        finally:
            a.close()
            b.close()
