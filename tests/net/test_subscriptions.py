"""Standing queries end to end: every PUSH audited against a replay oracle.

The acceptance contract: a subscriber receives a stamped delta for every
mutation batch that changes its query's match set and nothing otherwise,
and applying the deltas on top of the baseline reproduces, at every stamp,
exactly what a from-scratch centralized simulation computes on the graph
replayed to that stamp -- across the thread, process, and sharded backends,
with ``remove_node`` in the update stream.

Also here: HELLO version negotiation (a v1-pinned client keeps working
against a v2 server; SUBSCRIBE at v1 is refused), chunked v2 replies, and
subscription lapse/teardown behavior.
"""

from __future__ import annotations

import asyncio
import socket
import threading
import time
from typing import Dict, List, Set, Tuple

import pytest

from repro import ConcurrentSessionServer, partition, simulation, web_graph
from repro.bench.workloads import cyclic_pattern
from repro.errors import TransportError
from repro.graph.digraph import DiGraph
from repro.graph.mutations import DeleteEdge, InsertEdge, MutationOp, RemoveNode
from repro.net import protocol
from repro.net.client import SessionClient, connect
from repro.net.protocol import FrameKind
from repro.net.server import serve_in_thread

JOIN_TIMEOUT = 60.0


# ----------------------------------------------------------------------
# oracle machinery
# ----------------------------------------------------------------------
def _replay(graph: DiGraph, ops: List[MutationOp], n: int) -> DiGraph:
    """The graph after the first ``n`` updates (fresh copy each call)."""
    replayed = graph.copy()
    for op in ops[:n]:
        kind = op.as_tuple()[0]
        if kind == "delete":
            replayed.remove_edge(op.u, op.v)
        elif kind == "insert":
            replayed.add_edge(op.u, op.v)
        elif kind == "remove_node":
            replayed.remove_node(op.node)
        else:
            replayed.add_node(op.node, op.label)
    return replayed


def _as_sets(relation) -> Dict[object, Set[object]]:
    return {q: set(v) for q, v in relation.as_dict().items()}


def _mutation_script(graph: DiGraph, n_ops: int, seed: int) -> List[MutationOp]:
    """A mixed op stream (inserts, deletes, node removals), valid by
    construction against a mirror of ``graph``."""
    import random

    rng = random.Random(seed)
    mirror = graph.copy()
    ops: List[MutationOp] = []
    while len(ops) < n_ops:
        roll = rng.random()
        nodes = list(mirror.nodes())
        if roll < 0.45:
            edges = list(mirror.edges())
            if not edges:
                continue
            u, v = edges[rng.randrange(len(edges))]
            mirror.remove_edge(u, v)
            ops.append(DeleteEdge(u, v))
        elif roll < 0.8:
            u, v = rng.choice(nodes), rng.choice(nodes)
            if u == v or mirror.has_edge(u, v):
                continue
            mirror.add_edge(u, v)
            ops.append(InsertEdge(u, v))
        else:
            node = rng.choice(nodes)
            mirror.remove_node(node)
            ops.append(RemoveNode(node))
    return ops


def _audit(
    graph: DiGraph,
    query,
    baseline: Dict[object, Set[object]],
    ops: List[MutationOp],
    deltas: List[protocol.PushDelta],
) -> None:
    """Replay-at-stamp oracle: deltas land exactly at the match-changing
    stamps, and the evolving view matches the oracle at each one."""
    view = {q: set(v) for q, v in baseline.items()}
    stamps = [d.stamp for d in deltas]
    assert stamps == sorted(set(stamps)), "delta stamps must strictly increase"
    by_stamp = {d.stamp: d for d in deltas}
    previous = {q: set(v) for q, v in baseline.items()}
    for stamp in range(1, len(ops) + 1):
        oracle = _as_sets(simulation(query, _replay(graph, ops, stamp)))
        delta = by_stamp.get(stamp)
        if oracle == previous:
            assert delta is None, (
                f"stamp {stamp}: delta pushed for a batch that left the "
                "answer unchanged"
            )
        else:
            assert delta is not None, (
                f"stamp {stamp}: the answer changed but no delta arrived"
            )
            assert not delta.lapsed
            assert delta.added or delta.removed
            for qn, vn in delta.added:
                view.setdefault(qn, set()).add(vn)
            for qn, vn in delta.removed:
                view[qn].discard(vn)
            assert view == oracle, f"stamp {stamp}: view diverged from oracle"
        previous = oracle


def _last_change_stamp(
    graph: DiGraph,
    query,
    baseline: Dict[object, Set[object]],
    ops: List[MutationOp],
) -> int:
    """The highest stamp at which the query's answer changes (0 if never)."""
    last = 0
    previous = baseline
    for stamp in range(1, len(ops) + 1):
        oracle = _as_sets(simulation(query, _replay(graph, ops, stamp)))
        if oracle != previous:
            last = stamp
        previous = oracle
    return last


def _collect_until(sub, target_stamp: int, out: List) -> None:
    """Drain a blocking Subscription until a delta reaches ``target_stamp``."""
    for delta in sub:
        out.append(delta)
        if delta.stamp >= target_stamp:
            return


# ----------------------------------------------------------------------
# fixtures
# ----------------------------------------------------------------------
@pytest.fixture()
def instance():
    graph = web_graph(80, 280, n_labels=4, seed=11)
    frag = partition(graph, 3, seed=11)
    query = cyclic_pattern(graph, 3, 4, seed=2)
    return graph, frag, query


# ----------------------------------------------------------------------
# negotiation
# ----------------------------------------------------------------------
class TestNegotiation:
    def test_connect_negotiates_v2(self, instance):
        graph, frag, query = instance
        with serve_in_thread(frag, backend="thread") as srv:
            with connect(srv.address, timeout=JOIN_TIMEOUT) as client:
                assert client.protocol_version == protocol.PROTOCOL_VERSION
                assert _as_sets(client.run(query).relation) == _as_sets(
                    simulation(query, graph)
                )

    def test_v1_pinned_client_stays_v1_and_works(self, instance):
        graph, frag, query = instance
        with serve_in_thread(frag, backend="thread") as srv:
            with connect(
                srv.address, timeout=JOIN_TIMEOUT, versions=(1,)
            ) as client:
                assert client.protocol_version == protocol.PROTOCOL_V1
                u, v = next(iter(graph.edges()))
                assert client.delete_edge(u, v).stamp == 1
                result = client.run(query)
                assert result.stamp == 1
                assert _as_sets(result.relation) == _as_sets(
                    simulation(query, graph)
                )

    def test_un_negotiated_client_speaks_v1(self, instance):
        """A client that never says HELLO is indistinguishable from an old
        v1 peer; every reply mirrors the request's wire version."""
        graph, frag, query = instance
        with serve_in_thread(frag, backend="thread") as srv:
            with SessionClient(*srv.address, timeout=JOIN_TIMEOUT) as client:
                assert client.protocol_version == protocol.PROTOCOL_V1
                assert _as_sets(client.run(query).relation) == _as_sets(
                    simulation(query, graph)
                )

    def test_server_announces_both_versions(self, instance):
        _graph, frag, _query = instance
        with serve_in_thread(frag, backend="thread") as srv:
            with SessionClient(*srv.address, timeout=JOIN_TIMEOUT) as client:
                reply = client.hello()
                assert set(reply.versions) == protocol.SUPPORTED_VERSIONS

    def test_v1_pinned_client_cannot_subscribe(self, instance):
        _graph, frag, query = instance
        with serve_in_thread(frag, backend="thread") as srv:
            with connect(
                srv.address, timeout=JOIN_TIMEOUT, versions=(1,)
            ) as client:
                with pytest.raises(TransportError, match="protocol v2"):
                    client.subscribe(query)

    def test_subscribe_frame_at_v1_is_refused(self, instance):
        """The server-side guard: a hand-rolled v1 SUBSCRIBE frame earns an
        ERROR even though the kind is known."""
        _graph, frag, query = instance
        with serve_in_thread(frag, backend="thread") as srv:
            sock = socket.create_connection(srv.address, timeout=JOIN_TIMEOUT)
            try:
                protocol.write_frame(
                    sock,
                    FrameKind.SUBSCRIBE,
                    protocol.SubscribeRequest(query=query),
                    seq=5,
                    version=protocol.PROTOCOL_V1,
                )
                kind, seq, payload = protocol.read_frame(sock)
                assert kind == FrameKind.ERROR
                assert seq == 5
                assert "protocol v2" in payload.message
            finally:
                sock.close()

    def test_async_connect_negotiates_v2(self, instance):
        graph, frag, query = instance

        async def main():
            with serve_in_thread(frag, backend="thread") as srv:
                client = await connect(srv.address, async_=True)
                try:
                    assert client.protocol_version == protocol.PROTOCOL_VERSION
                    result = await client.run(query)
                    assert _as_sets(result.relation) == _as_sets(
                        simulation(query, graph)
                    )
                finally:
                    await client.aclose()

        asyncio.run(main())


# ----------------------------------------------------------------------
# the serving-stack registry (no sockets)
# ----------------------------------------------------------------------
class TestRegistry:
    def test_callback_fires_only_on_match_changes(self, instance):
        graph, frag, query = instance
        fired: List[Tuple[int, int, Tuple, Tuple]] = []
        with ConcurrentSessionServer(frag, backend="thread") as server:
            sub_id, baseline = server.subscribe(
                query, lambda *args: fired.append(args)
            )
            assert baseline.stamp == 0
            assert _as_sets(baseline.relation) == _as_sets(
                simulation(query, graph)
            )
            # An edge between fresh, query-irrelevant nodes: no push.
            server.add_node(10_001, "zz-unused")
            server.add_node(10_002, "zz-unused")
            server.insert_edge(10_001, 10_002)
            assert fired == []
            # Destroy every match by deleting every edge: pushes follow.
            before = _as_sets(simulation(query, graph))
            for u, v in list(graph.edges()):
                server.delete_edge(u, v)
            if any(before.values()):
                assert fired, "match set emptied but no callback fired"
                stamps = [stamp for _sub, stamp, _a, _r in fired]
                assert stamps == sorted(set(stamps))
                assert all(sub == sub_id for sub, *_ in fired)
                assert stamps[-1] <= server.stamp
                # Folding the deltas over the baseline empties the view.
                view = {q: set(v) for q, v in before.items()}
                for _sub, _stamp, added, removed in fired:
                    for qn, vn in added:
                        view.setdefault(qn, set()).add(vn)
                    for qn, vn in removed:
                        view[qn].discard(vn)
                assert not any(view.values())
            assert server.unsubscribe(sub_id)
            assert not server.unsubscribe(sub_id)

    def test_raising_callback_is_retired(self, instance):
        graph, frag, query = instance

        def boom(*_args):
            raise RuntimeError("subscriber bug")

        with ConcurrentSessionServer(frag, backend="thread") as server:
            sub_id, _ = server.subscribe(query, boom)
            for u, v in list(graph.edges()):
                server.delete_edge(u, v)
            # The first match-changing batch tripped the callback; the
            # registry must have dropped it rather than poison the writer.
            assert sub_id not in server._subs


# ----------------------------------------------------------------------
# end-to-end oracle, all backends
# ----------------------------------------------------------------------
class TestSubscriptionOracle:
    @pytest.mark.parametrize("backend", ["thread", "process", "sharded"])
    def test_every_push_matches_replay_oracle(self, backend):
        graph = web_graph(60, 200, n_labels=3, seed=23)
        # The thread backend serves this very object, mutating it in place:
        # everything oracle-shaped must work from a pristine snapshot.
        initial = graph.copy()
        frag = partition(graph, 3, seed=23)
        query = cyclic_pattern(graph, 3, 3, seed=5)
        ops = _mutation_script(initial, 24, seed=41)
        deltas: List[protocol.PushDelta] = []
        with serve_in_thread(frag, backend=backend, n_workers=3) as srv:
            with connect(srv.address, timeout=JOIN_TIMEOUT) as client:
                sub = client.subscribe(query)
                baseline = _as_sets(sub.relation)
                assert sub.stamp == 0
                assert baseline == _as_sets(simulation(query, initial))
                collector = threading.Thread(
                    target=_collect_until,
                    args=(sub, len(ops), deltas),
                    daemon=True,
                )
                collector.start()
                for op in ops:
                    client.apply([op])
                last_change_stamp = _last_change_stamp(
                    initial, query, baseline, ops
                )
                # Wait for the tail push (if any); the collector exits on
                # reaching len(ops), so nudge it with a final no-op check.
                deadline = time.time() + JOIN_TIMEOUT
                while time.time() < deadline:
                    if deltas and deltas[-1].stamp >= last_change_stamp:
                        break
                    if last_change_stamp == 0:
                        break
                    time.sleep(0.02)
                sub.close()
                collector.join(timeout=JOIN_TIMEOUT)
        _audit(initial, query, baseline, ops, deltas)
        assert deltas, "a 24-op mixed script should change the answer at least once"

    def test_two_subscribers_one_mutating_client(self, instance):
        """Independent subscriptions see independent, equally-correct
        streams (PR-3 parity, now over PUSH)."""
        graph, frag, query = instance
        initial = graph.copy()
        ops = _mutation_script(initial, 12, seed=7)
        with serve_in_thread(frag, backend="thread") as srv:
            with connect(srv.address, timeout=JOIN_TIMEOUT) as client:
                sub_a = client.subscribe(query)
                sub_b = client.subscribe(query)
                base_a = _as_sets(sub_a.relation)
                base_b = _as_sets(sub_b.relation)
                assert base_a == base_b
                got_a: List[protocol.PushDelta] = []
                got_b: List[protocol.PushDelta] = []
                ta = threading.Thread(
                    target=_collect_until, args=(sub_a, len(ops), got_a), daemon=True
                )
                tb = threading.Thread(
                    target=_collect_until, args=(sub_b, len(ops), got_b), daemon=True
                )
                ta.start()
                tb.start()
                for op in ops:
                    client.apply([op])
                last_change = _last_change_stamp(initial, query, base_a, ops)
                deadline = time.time() + JOIN_TIMEOUT
                while time.time() < deadline and last_change and not (
                    got_a
                    and got_b
                    and got_a[-1].stamp >= last_change
                    and got_b[-1].stamp >= last_change
                ):
                    time.sleep(0.02)
                sub_a.close()
                sub_b.close()
        _audit(initial, query, base_a, ops, got_a)
        _audit(initial, query, base_b, ops, got_b)


def _applied(
    baseline: Dict[object, Set[object]], deltas: List[protocol.PushDelta]
) -> Dict[object, Set[object]]:
    view = {q: set(v) for q, v in baseline.items()}
    for d in list(deltas):
        for qn, vn in d.added:
            view.setdefault(qn, set()).add(vn)
        for qn, vn in d.removed:
            view[qn].discard(vn)
    return view


# ----------------------------------------------------------------------
# async subscription + lapse + teardown
# ----------------------------------------------------------------------
class TestAsyncSubscription:
    def test_async_stream_matches_oracle(self, instance):
        graph, frag, query = instance
        initial = graph.copy()
        ops = _mutation_script(initial, 10, seed=13)

        async def main():
            with serve_in_thread(frag, backend="thread") as srv:
                client = await connect(srv.address, async_=True)
                try:
                    sub = await client.subscribe(query)
                    baseline = _as_sets(sub.relation)
                    deltas: List[protocol.PushDelta] = []

                    async def consume():
                        async for d in sub:
                            deltas.append(d)

                    task = asyncio.create_task(consume())
                    for op in ops:
                        await client.apply([op])
                    last_change = _last_change_stamp(
                        initial, query, baseline, ops
                    )
                    deadline = time.time() + JOIN_TIMEOUT
                    while time.time() < deadline and last_change:
                        if deltas and deltas[-1].stamp >= last_change:
                            break
                        await asyncio.sleep(0.02)
                    await sub.aclose()
                    await asyncio.wait_for(task, timeout=JOIN_TIMEOUT)
                    return baseline, deltas
                finally:
                    await client.aclose()

        baseline, deltas = asyncio.run(main())
        _audit(initial, query, baseline, ops, deltas)

    def test_slow_consumer_lapses_locally(self, instance):
        """A consumer that never drains past ``buffer`` deltas receives one
        final lapsed marker and the server forgets the subscription."""
        graph, frag, query = instance

        async def main():
            with serve_in_thread(frag, backend="thread") as srv:
                client = await connect(srv.address, async_=True)
                try:
                    sub = await client.subscribe(query, buffer=1)
                    # Not consuming: each edge deletion that changes the
                    # answer lands in the size-1 queue; the second overflows.
                    for u, v in list(graph.edges()):
                        await client.delete_edge(u, v)
                    deadline = time.time() + JOIN_TIMEOUT
                    got: List[protocol.PushDelta] = []
                    async for d in sub:
                        got.append(d)
                        if d.lapsed:
                            break
                        if time.time() > deadline:  # pragma: no cover
                            pytest.fail("no lapse within the deadline")
                    assert got[-1].lapsed
                    # The fire-and-forget UNSUBSCRIBE reaches the registry.
                    registry = srv.ingress.server
                    while time.time() < deadline and registry._subs:
                        await asyncio.sleep(0.02)
                    assert not registry._subs
                finally:
                    await client.aclose()

        asyncio.run(main())

    def test_close_unsubscribes_server_side(self, instance):
        graph, frag, query = instance
        with serve_in_thread(frag, backend="thread") as srv:
            with connect(srv.address, timeout=JOIN_TIMEOUT) as client:
                sub = client.subscribe(query)
                registry = srv.ingress.server
                assert len(registry._subs) == 1
                sub.close()
                deadline = time.time() + JOIN_TIMEOUT
                while time.time() < deadline and registry._subs:
                    time.sleep(0.02)
                assert not registry._subs

    def test_disconnect_unsubscribes_server_side(self, instance):
        """A vanished subscriber must not leak registry entries."""
        graph, frag, query = instance
        with serve_in_thread(frag, backend="thread") as srv:
            client = connect(srv.address, timeout=JOIN_TIMEOUT)
            sub = client.subscribe(query)
            registry = srv.ingress.server
            assert len(registry._subs) == 1
            sub._sock.close()  # simulate a crash: no UNSUBSCRIBE, no BYE
            client.close()
            deadline = time.time() + JOIN_TIMEOUT
            while time.time() < deadline and registry._subs:
                time.sleep(0.02)
            assert not registry._subs


# ----------------------------------------------------------------------
# chunked replies
# ----------------------------------------------------------------------
class TestChunkedReplies:
    def test_large_v2_reply_is_chunked_and_reassembled(self, instance, monkeypatch):
        graph, frag, query = instance
        monkeypatch.setattr("repro.net.server.CHUNK_SIZE", 512)
        with serve_in_thread(frag, backend="thread") as srv:
            with connect(srv.address, timeout=JOIN_TIMEOUT) as client:
                result = client.run(query)
                assert _as_sets(result.relation) == _as_sets(
                    simulation(query, graph)
                )

    def test_v1_replies_never_chunk(self, instance, monkeypatch):
        graph, frag, query = instance
        monkeypatch.setattr("repro.net.server.CHUNK_SIZE", 512)
        with serve_in_thread(frag, backend="thread") as srv:
            with connect(
                srv.address, timeout=JOIN_TIMEOUT, versions=(1,)
            ) as client:
                result = client.run(query)
                assert _as_sets(result.relation) == _as_sets(
                    simulation(query, graph)
                )

    def test_async_chunk_reassembly(self, instance, monkeypatch):
        graph, frag, query = instance
        monkeypatch.setattr("repro.net.server.CHUNK_SIZE", 512)

        async def main():
            with serve_in_thread(frag, backend="thread") as srv:
                client = await connect(srv.address, async_=True)
                try:
                    result = await client.run(query)
                    assert _as_sets(result.relation) == _as_sets(
                        simulation(query, graph)
                    )
                finally:
                    await client.aclose()

        asyncio.run(main())
