"""The v2 safe codec: encode -> decode is the identity; garbage dies.

The hypothesis block round-trips the closed value vocabulary (primitives,
containers, registered structs) and asserts determinism (equal values,
equal bytes -- including sets, which serialize in sorted-bytes order).  The
rejection block walks the decoder's validation branches: unknown tags,
unknown struct ids, truncation, trailing bytes, depth bombs, and
unregistered types must all fail loudly as :class:`WireFormatError` --
never construct a surprise object, which is the entire point of dropping
pickle from the client-facing wire.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WireFormatError
from repro.graph.mutations import AddNode, DeleteEdge, InsertEdge, RemoveNode
from repro.net import codec, protocol

# ----------------------------------------------------------------------
# strategies: the closed value vocabulary
# ----------------------------------------------------------------------
PRIMITIVES = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**70), max_value=2**70),  # crosses the i64 split
    st.floats(allow_nan=False),
    st.text(max_size=20),
    st.binary(max_size=20),
)

HASHABLE = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.text(max_size=10),
    st.binary(max_size=10),
)

VALUES = st.recursive(
    PRIMITIVES,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.lists(children, max_size=4).map(tuple),
        st.dictionaries(HASHABLE, children, max_size=4),
        st.sets(HASHABLE, max_size=4),
        st.frozensets(HASHABLE, max_size=4),
    ),
    max_leaves=20,
)

MUTATION_OPS = st.one_of(
    st.builds(InsertEdge, st.integers(), st.integers()),
    st.builds(DeleteEdge, st.integers(), st.integers()),
    st.builds(AddNode, st.integers(), st.text(max_size=5),
              st.one_of(st.none(), st.integers(min_value=0, max_value=7))),
    st.builds(RemoveNode, st.integers()),
)

PAIRS = st.lists(
    st.tuples(st.text(max_size=5), st.integers()), max_size=4
).map(tuple)

V2_FRAMES = st.one_of(
    st.builds(
        protocol.Hello,
        role=st.sampled_from(["client", "server"]),
        token=st.binary(max_size=8),
        versions=st.sampled_from([(1,), (2,), (1, 2)]),
    ),
    st.builds(protocol.MutateRequest,
              ops=st.lists(MUTATION_OPS, max_size=4).map(tuple)),
    st.builds(
        protocol.SubscribeRequest,
        query=st.just(None),
        algorithm=st.sampled_from(["auto", "dgpm"]),
        config=st.none(),
        buffer=st.integers(min_value=1, max_value=1024),
    ),
    st.builds(
        protocol.SubscribeReply,
        sub_id=st.integers(min_value=1, max_value=10**6),
        stamp=st.integers(min_value=0, max_value=10**9),
        relation=st.none(),
    ),
    st.builds(protocol.UnsubscribeRequest, sub_id=st.integers(min_value=1)),
    st.builds(
        protocol.PushDelta,
        sub_id=st.integers(min_value=1, max_value=10**6),
        stamp=st.integers(min_value=0, max_value=10**9),
        added=PAIRS,
        removed=PAIRS,
        lapsed=st.booleans(),
    ),
    st.builds(
        protocol.ResultChunk,
        index=st.integers(min_value=0, max_value=100),
        total=st.integers(min_value=1, max_value=101),
        payload=st.binary(max_size=64),
    ),
)


# ----------------------------------------------------------------------
# identity + determinism
# ----------------------------------------------------------------------
class TestRoundTrip:
    @settings(max_examples=300, deadline=None)
    @given(value=VALUES)
    def test_value_identity(self, value):
        assert codec.decode(codec.encode(value)) == value

    @settings(max_examples=150, deadline=None)
    @given(frame=V2_FRAMES)
    def test_frame_identity(self, frame):
        assert codec.decode(codec.encode(frame)) == frame

    @settings(max_examples=100, deadline=None)
    @given(value=VALUES)
    def test_container_types_survive(self, value):
        # tuple stays tuple, list stays list, set stays set...
        assert type(codec.decode(codec.encode(value))) is type(value)

    def test_set_encoding_is_order_independent(self):
        a = codec.encode({"x", "y", "z", 1, 2, 3})
        b = codec.encode({3, 2, 1, "z", "y", "x"})
        assert a == b

    def test_int_boundaries(self):
        for n in (0, 2**63 - 1, -(2**63), 2**63, -(2**63) - 1, 2**200):
            assert codec.decode(codec.encode(n)) == n

    def test_wire_version_dispatch_selects_codec(self):
        """encode_payload at v2 produces codec bytes, at v1 pickle bytes."""
        frame = protocol.Hello(role="client", versions=(1, 2))
        v2 = protocol.encode_payload(protocol.FrameKind.HELLO, frame, version=2)
        v1 = protocol.encode_payload(protocol.FrameKind.HELLO, frame, version=1)
        assert codec.decode(v2[protocol.HEADER_SIZE:]) == frame
        assert v1[protocol.HEADER_SIZE:].startswith(b"\x80")  # pickle proto 2+
        assert protocol.decode(v2)[0] == frame
        assert protocol.decode(v1)[0] == frame


# ----------------------------------------------------------------------
# rejections
# ----------------------------------------------------------------------
class TestRejection:
    def test_unknown_tag(self):
        with pytest.raises(WireFormatError, match="unknown value tag"):
            codec.decode(b"\xff")

    def test_unknown_struct_id(self):
        with pytest.raises(WireFormatError, match="unknown struct id"):
            codec.decode(bytes([0x0E, 0x7F, 0x00]))

    def test_truncated_varint(self):
        with pytest.raises(WireFormatError, match="truncated varint"):
            codec.decode(bytes([0x06, 0x80]))

    def test_truncated_payload(self):
        data = codec.encode("hello world")
        with pytest.raises(WireFormatError, match="truncated"):
            codec.decode(data[:-3])

    def test_trailing_bytes(self):
        with pytest.raises(WireFormatError, match="stray bytes"):
            codec.decode(codec.encode(42) + b"\x00")

    def test_depth_bomb(self):
        # One TUPLE-of-one header per level, deeper than MAX_DEPTH.
        data = bytes([0x08, 0x01]) * (codec.MAX_DEPTH + 2) + b"\x00"
        with pytest.raises(WireFormatError, match="nesting exceeds"):
            codec.decode(data)

    def test_deep_value_refuses_to_encode(self):
        value: object = 0
        for _ in range(codec.MAX_DEPTH + 2):
            value = (value,)
        with pytest.raises(WireFormatError, match="nesting exceeds"):
            codec.encode(value)

    def test_unregistered_type_refuses_to_encode(self):
        class Sneaky:
            pass

        with pytest.raises(WireFormatError, match="not encodable"):
            codec.encode(Sneaky())

    def test_exception_types_are_not_encodable(self):
        # Exceptions cross the wire as ErrorReply fields, never directly:
        # a codec that serialized arbitrary exception objects would be a
        # reconstruction gadget.
        with pytest.raises(WireFormatError, match="not encodable"):
            codec.encode(ValueError("boom"))

    def test_bad_utf8_in_string(self):
        raw = b"\xff\xfe"
        data = bytes([0x06, len(raw)]) + raw
        with pytest.raises(WireFormatError, match="invalid utf-8"):
            codec.decode(data)

    def test_struct_arity_drift_dies(self):
        """A struct body with too many fields must not build the object."""
        data = bytearray(codec.encode(protocol.UnsubscribeRequest(sub_id=3)))
        # STRUCT tag, sid varint, field count varint: bump the count and
        # append one extra NONE field.
        assert data[0] == 0x0E
        count_at = 2 if data[1] < 0x80 else 3
        data[count_at] += 1
        data += b"\x00"
        with pytest.raises(WireFormatError, match="cannot rebuild"):
            codec.decode(bytes(data))
