"""The shipped network example must actually run (server + 2 clients).

``examples/network_query_server.py`` asserts the per-stamp snapshot
contract internally (every client-observed answer equals a from-scratch
simulation on a replay at its stamp); this test runs it as a real
subprocess, the way a user would.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]


def test_network_example_runs_clean():
    env = dict(os.environ)
    src = str(REPO / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, str(REPO / "examples" / "network_query_server.py")],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )
    assert proc.returncode == 0, (
        f"example failed\nstdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
    )
    assert "audited all" in proc.stdout
    assert "server closed cleanly" in proc.stdout
