"""End-to-end tests for the asyncio ingress and both clients.

The load-bearing assertion mirrors the acceptance contract of the network
layer: one server, at least two clients (one blocking, one asyncio), and
*every* client-observed result equals a from-scratch centralized simulation
on a replay of the graph after exactly ``result.stamp`` updates -- the
socket changes the wire, never the snapshot semantics.
"""

from __future__ import annotations

import asyncio
import socket
import threading
import time
from typing import List, Tuple

import pytest

from repro import (
    ConcurrentSessionServer,
    partition,
    simulation,
    web_graph,
)
from repro.bench.workloads import cyclic_pattern
from repro.errors import GraphError, ReproError, TransportError
from repro.graph.digraph import DiGraph
from repro.net import AsyncSessionClient, SessionClient, serve_in_thread
from repro.net.server import NetworkSessionServer

JOIN_TIMEOUT = 60.0


@pytest.fixture()
def instance():
    graph = web_graph(150, 600, n_labels=5, seed=17)
    frag = partition(graph, 3, seed=17)
    queries = [cyclic_pattern(graph, 3, 4, seed=s) for s in range(3)]
    return graph, frag, queries


def _replay(graph: DiGraph, ops: List[Tuple], n: int) -> DiGraph:
    """The graph after the first ``n`` updates (fresh copy each call)."""
    replayed = graph.copy()
    for op in ops[:n]:
        if op[0] == "delete":
            replayed.remove_edge(op[1], op[2])
        elif op[0] == "insert":
            replayed.add_edge(op[1], op[2])
        else:
            replayed.add_node(op[1], op[2])
    return replayed


class TestSyncClient:
    def test_parity_and_zero_stamp(self, instance):
        graph, frag, queries = instance
        with serve_in_thread(frag, backend="thread", n_workers=4) as srv:
            with SessionClient(*srv.address, timeout=60.0) as client:
                for q in queries:
                    result = client.run(q, algorithm="dgpm")
                    assert result.stamp == 0
                    assert result.relation == simulation(q, graph)

    def test_run_many_in_order(self, instance):
        graph, frag, queries = instance
        with serve_in_thread(frag, backend="thread", n_workers=4) as srv:
            with SessionClient(*srv.address, timeout=60.0) as client:
                results = client.run_many(queries, algorithm="dgpm")
                for q, r in zip(queries, results):
                    assert r.relation == simulation(q, graph)

    def test_mutations_advance_stamps_and_answers(self, instance):
        graph, frag, queries = instance
        ops: List[Tuple] = []
        with serve_in_thread(frag, backend="thread", n_workers=4) as srv:
            with SessionClient(*srv.address, timeout=60.0) as client:
                edges = list(graph.edges())
                for i, (u, v) in enumerate(edges[:3]):
                    outcome = client.delete_edge(u, v)
                    ops.append(("delete", u, v))
                    assert outcome.stamp == i + 1
                    result = client.run(queries[0], algorithm="dgpm")
                    assert result.stamp == i + 1
                    assert result.relation == simulation(queries[0], graph)
                back = ops[-1]
                outcome = client.insert_edge(back[1], back[2])
                assert outcome.stamp == 4
                assert outcome.outcome.kind == "insert"

    def test_batch_apply_over_the_wire(self, instance):
        graph, frag, queries = instance
        with serve_in_thread(frag, backend="thread", n_workers=2) as srv:
            with SessionClient(*srv.address, timeout=60.0) as client:
                edges = list(graph.edges())
                outcomes = client.apply(
                    [("delete", *edges[0]), ("delete", *edges[1])]
                )
                assert [o.stamp for o in outcomes] == [1, 2]
                result = client.run(queries[0], algorithm="dgpm")
                assert result.stamp == 2
                assert result.relation == simulation(queries[0], graph)

    def test_stats_frame(self, instance):
        graph, frag, queries = instance
        with serve_in_thread(frag, backend="thread", n_workers=2) as srv:
            with SessionClient(*srv.address, timeout=60.0) as client:
                client.run(queries[0], algorithm="dgpm")
                client.delete_edge(*list(graph.edges())[0])
                reply = client.stats()
                assert reply.backend == "thread"
                assert reply.stamp == 1
                assert reply.stats.queries_served >= 1
                assert reply.stats.mutations == 1

    def test_hello_handshake(self, instance):
        graph, frag, queries = instance
        with serve_in_thread(frag, backend="thread", n_workers=2) as srv:
            with SessionClient(*srv.address, timeout=60.0) as client:
                reply = client.hello()
                assert reply.role == "server"
                # the handshake is a plain request: the connection keeps working
                assert client.run(queries[0], algorithm="dgpm").stamp == 0

    def test_server_errors_reraise_original_type(self, instance):
        graph, frag, queries = instance
        with serve_in_thread(frag, backend="thread", n_workers=2) as srv:
            with SessionClient(*srv.address, timeout=60.0) as client:
                with pytest.raises(GraphError):
                    client.delete_edge("no-such", "edge")
                with pytest.raises(ReproError):
                    client.run(queries[0], algorithm="not-an-algorithm")
                # the connection survives per-request failures
                assert client.run(queries[0], algorithm="dgpm").stamp == 0

    def test_unreachable_server(self):
        with pytest.raises(TransportError, match="cannot reach"):
            SessionClient("127.0.0.1", 1, timeout=0.5)

    def test_timeout_marks_client_broken(self, instance):
        """After a recv timeout the stream is desynchronized; the client
        must refuse further use instead of mispairing late replies."""
        graph, frag, queries = instance
        silent = socket.create_server(("127.0.0.1", 0))
        try:
            client = SessionClient(*silent.getsockname()[:2], timeout=0.2)
            with pytest.raises(TransportError, match="connection to server lost"):
                client.run(queries[0])
            with pytest.raises(TransportError, match="closed"):
                client.run(queries[0])
        finally:
            silent.close()

    def test_client_close_is_idempotent_and_final(self, instance):
        graph, frag, queries = instance
        with serve_in_thread(frag, backend="thread", n_workers=2) as srv:
            client = SessionClient(*srv.address, timeout=60.0)
            client.close()
            client.close()
            with pytest.raises(TransportError, match="closed"):
                client.run(queries[0])


class TestReconnectPolicy:
    def test_bounded_retry_restores_service_after_restart(self, instance):
        """The dead-peer fix: with ``reconnect=``, a server restart costs
        one failed request, then bounded redial restores service."""
        from repro.runtime.transport import RetryPolicy

        graph, frag, queries = instance
        srv = serve_in_thread(frag, backend="thread", n_workers=2)
        host, port = srv.address
        client = SessionClient(
            host, port, timeout=60.0,
            reconnect=RetryPolicy(attempts=5, backoff_s=0.05),
        )
        try:
            before = client.run(queries[0], algorithm="dgpm")
            srv.close()
            # the request the break struck still fails (its reply can no
            # longer be trusted to pair up) ...
            with pytest.raises(TransportError):
                client.run(queries[0], algorithm="dgpm")
            srv = serve_in_thread(frag, backend="thread", n_workers=2, port=port)
            # ... but the next one redials and serves
            after = client.run(queries[0], algorithm="dgpm")
            assert after.relation == before.relation
            assert after.stamp == 0
        finally:
            client.close()
            srv.close()

    def test_redial_exhaustion_is_bounded(self, instance):
        """With nothing listening, the redial gives up after the policy's
        attempts instead of spinning forever."""
        from repro.runtime.transport import RetryPolicy

        graph, frag, queries = instance
        srv = serve_in_thread(frag, backend="thread", n_workers=2)
        host, port = srv.address
        client = SessionClient(
            host, port, timeout=60.0,
            reconnect=RetryPolicy(attempts=2, backoff_s=0.01),
        )
        try:
            client.run(queries[0], algorithm="dgpm")
            srv.close()
            with pytest.raises(TransportError):
                client.run(queries[0], algorithm="dgpm")
            with pytest.raises(TransportError, match="2 attempts"):
                client.run(queries[0], algorithm="dgpm")
            # a later restart still rescues the client: not permanently broken
            srv = serve_in_thread(frag, backend="thread", n_workers=2, port=port)
            assert client.run(queries[0], algorithm="dgpm").stamp == 0
        finally:
            client.close()
            srv.close()

    def test_without_policy_break_is_permanent(self, instance):
        """The original conservative semantics are unchanged by default."""
        graph, frag, queries = instance
        srv = serve_in_thread(frag, backend="thread", n_workers=2)
        host, port = srv.address
        client = SessionClient(host, port, timeout=60.0)
        try:
            client.run(queries[0], algorithm="dgpm")
            srv.close()
            with pytest.raises(TransportError):
                client.run(queries[0], algorithm="dgpm")
            srv = serve_in_thread(frag, backend="thread", n_workers=2, port=port)
            with pytest.raises(TransportError, match="closed"):
                client.run(queries[0], algorithm="dgpm")
        finally:
            client.close()
            srv.close()


class TestAsyncClient:
    def test_pipelined_parity(self, instance):
        graph, frag, queries = instance
        with serve_in_thread(frag, backend="thread", n_workers=4) as srv:
            host, port = srv.address

            async def scenario():
                async with await AsyncSessionClient.connect(host, port) as client:
                    results = await client.run_many(queries, algorithm="dgpm")
                    reply = await client.stats()
                    return results, reply

            results, reply = asyncio.run(scenario())
            for q, r in zip(queries, results):
                assert r.stamp == 0
                assert r.relation == simulation(q, graph)
            assert reply.stats.queries_served >= len(queries)

    def test_async_hello_handshake(self, instance):
        graph, frag, queries = instance
        with serve_in_thread(frag, backend="thread", n_workers=2) as srv:
            host, port = srv.address

            async def scenario():
                async with await AsyncSessionClient.connect(host, port) as client:
                    return await client.hello()

            assert asyncio.run(scenario()).role == "server"

    def test_async_mutations_and_errors(self, instance):
        graph, frag, queries = instance
        with serve_in_thread(frag, backend="thread", n_workers=4) as srv:
            host, port = srv.address
            edges = list(graph.edges())

            async def scenario():
                async with await AsyncSessionClient.connect(host, port) as client:
                    outcome = await client.delete_edge(*edges[0])
                    assert outcome.stamp == 1
                    with pytest.raises(GraphError):
                        await client.delete_edge(*edges[0])  # already gone
                    result = await client.run(queries[0], algorithm="dgpm")
                    assert result.stamp == 1
                    return result

            result = asyncio.run(scenario())
            assert result.relation == simulation(queries[0], graph)

    def test_connection_lost_fails_pending(self, instance):
        graph, frag, queries = instance
        srv = serve_in_thread(frag, backend="thread", n_workers=2)
        host, port = srv.address

        async def scenario():
            client = await AsyncSessionClient.connect(host, port)
            result = await client.run(queries[0], algorithm="dgpm")
            srv.close()  # server goes away under the client
            with pytest.raises(TransportError):
                for _ in range(20):
                    await client.run(queries[0], algorithm="dgpm")
            await client.aclose()
            return result

        try:
            result = asyncio.run(scenario())
            assert result.relation == simulation(queries[0], graph)
        finally:
            srv.close()


class TestSnapshotContractOverTheWire:
    def test_two_clients_and_a_feed_replay_exactly(self, instance):
        """The acceptance scenario: sync + asyncio clients under mutation.

        Every result any client observed must equal a from-scratch
        simulation at its stamp -- replayed update-prefix by update-prefix.
        """
        graph, frag, queries = instance
        initial = graph.copy()
        audited: List[Tuple[int, object]] = []
        ops: List[Tuple] = []
        failures: List[BaseException] = []

        with serve_in_thread(frag, backend="thread", n_workers=4) as srv:
            host, port = srv.address

            def sync_reader() -> None:
                try:
                    with SessionClient(host, port, timeout=60.0) as client:
                        for i in range(8):
                            qi = i % len(queries)
                            audited.append(
                                (qi, client.run(queries[qi], algorithm="dgpm"))
                            )
                except BaseException as exc:
                    failures.append(exc)

            def feed() -> None:
                try:
                    with SessionClient(host, port, timeout=60.0) as client:
                        edges = list(initial.edges())
                        for u, v in edges[:4]:
                            client.delete_edge(u, v)
                            ops.append(("delete", u, v))
                except BaseException as exc:
                    failures.append(exc)

            def async_reader() -> None:
                async def scenario():
                    async with await AsyncSessionClient.connect(host, port) as c:
                        for _ in range(3):
                            results = await asyncio.gather(
                                *[c.run(q, algorithm="dgpm") for q in queries]
                            )
                            audited.extend(enumerate(results))

                try:
                    asyncio.run(scenario())
                except BaseException as exc:
                    failures.append(exc)

            threads = [
                threading.Thread(target=sync_reader),
                threading.Thread(target=feed),
                threading.Thread(target=async_reader),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=JOIN_TIMEOUT)
                assert not t.is_alive(), "a network client deadlocked"

        assert not failures, f"client failed: {failures[0]!r}"
        assert audited and ops
        oracles = {}
        for qi, result in audited:
            key = (qi, result.stamp)
            if key not in oracles:
                oracles[key] = simulation(
                    queries[qi], _replay(initial, ops, result.stamp)
                )
            assert result.relation == oracles[key], (
                f"query {qi} at stamp {result.stamp} diverged from the "
                f"from-scratch oracle"
            )


class TestIngressLifecycle:
    def test_fronting_an_existing_server_does_not_own_it(self, instance):
        graph, frag, queries = instance
        with ConcurrentSessionServer(frag, backend="thread", n_workers=2) as server:
            with serve_in_thread(server) as srv:
                with SessionClient(*srv.address, timeout=60.0) as client:
                    assert client.run(queries[0], algorithm="dgpm").stamp == 0
            # ingress gone; the serving stack must still be alive
            assert server.run(queries[0], algorithm="dgpm").stamp == 0

    def test_closed_ingress_refuses_new_connections(self, instance):
        graph, frag, queries = instance
        srv = serve_in_thread(frag, backend="thread", n_workers=2)
        address = srv.address
        srv.close()
        with pytest.raises(TransportError):
            SessionClient(*address, timeout=1.0).run(queries[0])

    def test_close_drains_inflight_requests(self, instance):
        """Requests accepted before shutdown still get their answers."""
        graph, frag, queries = instance
        srv = serve_in_thread(frag, backend="thread", n_workers=4)
        host, port = srv.address
        results: List[object] = []
        failures: List[BaseException] = []

        def reader() -> None:
            try:
                with SessionClient(host, port, timeout=60.0) as client:
                    for q in queries * 2:
                        results.append(client.run(q, algorithm="dgpm"))
            except TransportError:
                pass  # the goodbye raced shutdown; fine after >= 1 answer
            except BaseException as exc:
                failures.append(exc)

        t = threading.Thread(target=reader)
        t.start()
        while not results and t.is_alive():
            time.sleep(0.001)  # wait until at least one request was served
        srv.close()
        t.join(timeout=JOIN_TIMEOUT)
        assert not t.is_alive(), "reader deadlocked across ingress shutdown"
        assert not failures, f"reader failed: {failures[0]!r}"
        assert results
        for r in results:
            assert r.relation is not None

    def test_rejects_kwargs_with_existing_server(self, instance):
        graph, frag, queries = instance
        with ConcurrentSessionServer(frag, backend="thread", n_workers=2) as server:
            with pytest.raises(ReproError, match="belong to"):
                NetworkSessionServer(server, n_workers=8)


class TestFullStackOverTcpWorkers:
    def test_network_ingress_over_tcp_process_backend(self, instance):
        """The whole story at once: TCP clients -> asyncio ingress ->
        process backend whose replica workers are themselves TCP."""
        graph, frag, queries = instance
        with serve_in_thread(
            frag, backend="process", n_workers=2, transport="tcp"
        ) as srv:
            with SessionClient(*srv.address, timeout=120.0) as client:
                for q in queries:
                    result = client.run(q, algorithm="dgpm")
                    assert result.stamp == 0
                    assert result.relation == simulation(q, graph)
                outcome = client.delete_edge(*list(graph.edges())[0])
                assert outcome.stamp == 1
                result = client.run(queries[0], algorithm="dgpm")
                assert result.stamp == 1
                assert result.relation == simulation(queries[0], graph)
