"""Integration tests through the public package surface only."""

import pytest

import repro


class TestExports:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ lists missing attribute {name}"

    def test_version(self):
        assert repro.__version__ == "1.0.0"


class TestQuickstartFlow:
    def test_readme_flow(self):
        g = repro.web_graph(1000, 5000, seed=1)
        frag = repro.partition(g, n_fragments=4, seed=1)
        from repro.bench.workloads import cyclic_pattern

        q = cyclic_pattern(g, 4, 6, seed=1)
        result = repro.run_dgpm(q, frag)
        assert result.relation == repro.simulation(q, g)
        assert result.metrics.ds_kb >= 0
        assert result.is_match

    def test_partition_with_vf_target(self):
        g = repro.web_graph(1500, 7500, seed=2)
        frag = repro.partition(g, 6, seed=2, vf_ratio=0.30)
        frag.validate()
        assert frag.vf_ratio == pytest.approx(0.30, abs=0.06)

    def test_auto_dispatch_tree(self):
        tree = repro.random_tree(60, seed=1)
        frag = repro.tree_partition(tree, 4, seed=1)
        q = repro.Pattern({"q": tree.label(0)})
        result = repro.run_auto(q, frag)
        assert result.metrics.algorithm == "dGPMt"

    def test_custom_cost_model(self):
        g = repro.web_graph(500, 2000, seed=3)
        frag = repro.partition(g, 3, seed=3)
        q = repro.Pattern({"a": "dom0", "b": "dom1"}, [("a", "b")])
        slow = repro.DgpmConfig(cost=repro.CostModel(latency_s=1.0))
        fast = repro.DgpmConfig(cost=repro.CostModel(latency_s=0.0001))
        slow_pt = repro.run_dgpm(q, frag, slow).metrics.pt_seconds
        fast_pt = repro.run_dgpm(q, frag, fast).metrics.pt_seconds
        assert slow_pt > fast_pt

    def test_error_hierarchy(self):
        assert issubclass(repro.GraphError, repro.ReproError)
        assert issubclass(repro.PatternError, repro.ReproError)
        assert issubclass(repro.FragmentationError, repro.ReproError)
        assert issubclass(repro.ProtocolError, repro.ReproError)


class TestMultiprocessExecutor:
    def test_mp_matches_simulator(self):
        from repro.runtime.mp import run_dgpm_multiprocess

        g = repro.web_graph(400, 1600, seed=4)
        frag = repro.partition(g, 3, seed=4)
        from repro.bench.workloads import cyclic_pattern

        q = cyclic_pattern(g, 4, 5, seed=2)
        sim_result = repro.run_dgpm(q, frag, repro.DgpmConfig(enable_push=False))
        mp_result = run_dgpm_multiprocess(q, frag, repro.DgpmConfig(enable_push=False))
        assert mp_result.relation == sim_result.relation
        assert mp_result.metrics.n_messages == sim_result.metrics.n_messages
