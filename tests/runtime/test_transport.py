"""One test suite, two transports: pipe and TCP workers must be equivalent.

The ``transport`` fixture parametrizes every scenario below over both
channel implementations -- the site-program executor, the replica-session
pool behind :class:`ConcurrentSessionServer`, and dead-peer detection all
run the identical assertions, so the TCP path can never drift from the
pipe path's semantics.
"""

from __future__ import annotations

import multiprocessing
import time

import pytest

from repro import ConcurrentSessionServer, partition, simulation, web_graph
from repro.bench.workloads import cyclic_pattern
from repro.core import DgpmConfig, run_dgpm
from repro.errors import ProtocolError, ReproError, TransportError
from repro.graph.examples import figure1
from repro.graph.generators import random_labeled_graph
from repro.graph.pattern import Pattern
from repro.partition import random_partition
from repro.runtime.mp import _shard_worker, respawn_worker, run_dgpm_multiprocess
from repro.runtime.transport import (
    PipeTransport,
    RetryPolicy,
    SocketListener,
    connect_worker,
    open_worker_transport,
)


@pytest.fixture(params=["pipe", "tcp"])
def transport(request) -> str:
    """Every test in this file runs once per worker channel."""
    return request.param


# ----------------------------------------------------------------------
# the site-program executor
# ----------------------------------------------------------------------
class TestSiteExecutor:
    def test_figure1_matches_simulator(self, transport):
        q, g, frag = figure1()
        config = DgpmConfig(enable_push=False)
        sim_run = run_dgpm(q, frag, config)
        mp_run = run_dgpm_multiprocess(q, frag, config, transport=transport)
        assert mp_run.relation == sim_run.relation == simulation(q, g)
        assert mp_run.metrics.n_messages == sim_run.metrics.n_messages

    @pytest.mark.parametrize("seed", [0, 1])
    def test_random_instances(self, transport, seed):
        graph = random_labeled_graph(40, 160, n_labels=3, seed=seed)
        frag = random_partition(graph, 3, seed=seed)
        q = Pattern({"a": "L0", "b": "L1"}, [("a", "b"), ("b", "a")])
        config = DgpmConfig(enable_push=False)
        mp_run = run_dgpm_multiprocess(q, frag, config, transport=transport)
        assert mp_run.relation == simulation(q, graph)

    def test_message_accounting_is_channel_independent(self):
        """DS/message metering must not depend on the transport at all."""
        graph = random_labeled_graph(40, 160, n_labels=3, seed=2)
        frag = random_partition(graph, 3, seed=2)
        q = Pattern({"a": "L0", "b": "L1"}, [("a", "b"), ("b", "a")])
        config = DgpmConfig(enable_push=False)
        by_pipe = run_dgpm_multiprocess(q, frag, config, transport="pipe")
        by_tcp = run_dgpm_multiprocess(q, frag, config, transport="tcp")
        assert by_pipe.relation == by_tcp.relation
        assert by_pipe.metrics.n_messages == by_tcp.metrics.n_messages
        assert by_pipe.metrics.ds_bytes == by_tcp.metrics.ds_bytes
        assert by_pipe.metrics.n_rounds == by_tcp.metrics.n_rounds

    def test_unknown_transport_rejected(self):
        q, _, frag = figure1()
        with pytest.raises(ReproError, match="unknown transport"):
            run_dgpm_multiprocess(q, frag, transport="carrier-pigeon")


# ----------------------------------------------------------------------
# the replica-session pool (process backend of the concurrent server)
# ----------------------------------------------------------------------
@pytest.fixture()
def small_instance():
    graph = web_graph(150, 600, n_labels=5, seed=17)
    frag = partition(graph, 3, seed=17)
    queries = [cyclic_pattern(graph, 3, 4, seed=s) for s in range(3)]
    return graph, frag, queries


class TestResidentWorkerPool:
    def test_query_parity_and_mutation_lockstep(self, transport, small_instance):
        graph, frag, queries = small_instance
        with ConcurrentSessionServer(
            frag, backend="process", n_workers=2, transport=transport
        ) as server:
            for q, r in zip(queries, server.run_many(queries, algorithm="dgpm")):
                assert r.stamp == 0
                assert r.relation == simulation(q, graph)
            outcome = server.delete_edge(*list(graph.edges())[0])
            assert outcome.stamp == 1
            # replicas saw the broadcast: answers match the mutated oracle
            for q in queries:
                r = server.run(q, algorithm="dgpm")
                assert r.stamp == 1
                assert r.relation == simulation(q, graph)

    def test_worker_stats_reach_replicas(self, transport, small_instance):
        graph, frag, queries = small_instance
        with ConcurrentSessionServer(
            frag, backend="process", n_workers=2, transport=transport
        ) as server:
            server.run_many(queries * 2, algorithm="dgpm")
            stats = server.worker_stats()
            assert len(stats) == 2
            assert sum(s.queries_served for s in stats) == len(queries) * 2

    def test_dead_worker_raises_instead_of_hanging(self, transport, small_instance):
        """A killed worker surfaces as ProtocolError on the next dispatch --
        identically for pipe EOF and socket EOF."""
        graph, frag, queries = small_instance
        with ConcurrentSessionServer(
            frag, backend="process", n_workers=1, transport=transport
        ) as server:
            assert server.run(queries[0], algorithm="dgpm").stamp == 0
            worker = server._workers[0]
            worker.process.terminate()
            worker.process.join(timeout=10)
            with pytest.raises(ProtocolError):
                server.run(queries[0], algorithm="dgpm")
            # The only worker is dead: routing reports the pool state.
            with pytest.raises(ProtocolError, match="every worker"):
                server.run(queries[1], algorithm="dgpm")

    def test_dead_worker_is_routed_around(self, transport, small_instance):
        graph, frag, queries = small_instance
        with ConcurrentSessionServer(
            frag, backend="process", n_workers=2, transport=transport
        ) as server:
            assert server.run(queries[0], algorithm="dgpm").stamp == 0
            victim = server._workers[0]
            victim.process.terminate()
            victim.process.join(timeout=10)
            survived = 0
            for q in queries * 2:
                try:
                    r = server.run(q, algorithm="dgpm")
                except ProtocolError:
                    continue  # the dispatch that discovered the corpse
                assert r.relation == simulation(q, graph)
                survived += 1
            assert survived > 0, "routing never recovered onto the live worker"

    def test_thread_backend_rejects_transport_choice(self, small_instance):
        graph, frag, queries = small_instance
        with pytest.raises(ReproError, match="backend='process'"):
            ConcurrentSessionServer(frag, backend="thread", transport="tcp")

    def test_unknown_transport_rejected(self, small_instance):
        graph, frag, queries = small_instance
        with pytest.raises(ReproError, match="unknown transport"):
            ConcurrentSessionServer(frag, backend="process", transport="udp")


# ----------------------------------------------------------------------
# the transport primitives themselves
# ----------------------------------------------------------------------
def _tcp_pair():
    listener = SocketListener()
    token = SocketListener.fresh_token()
    worker_end = connect_worker(listener.address, token)
    slot, parent_end = listener.accept_worker({token: "w0"})
    listener.close()
    assert slot == "w0"
    return parent_end, worker_end


def _pipe_pair():
    ctx = multiprocessing.get_context()
    a, b = ctx.Pipe()
    return PipeTransport(a), PipeTransport(b)


class TestTransportPrimitives:
    def test_roundtrip_and_eof(self, transport):
        parent, worker = _tcp_pair() if transport == "tcp" else _pipe_pair()
        try:
            parent.send(("init", {"deps": [1, 2, 3]}))
            assert worker.recv() == ("init", {"deps": [1, 2, 3]})
            worker.send(("msgs", ["a", "b"]))
            assert parent.recv() == ("msgs", ["a", "b"])
            worker.close()
            with pytest.raises(EOFError):
                parent.recv()
        finally:
            parent.close()
            worker.close()

    def test_open_worker_transport_pipe_spec(self):
        ctx = multiprocessing.get_context()
        a, b = ctx.Pipe()
        link = open_worker_transport(("pipe", b))
        PipeTransport(a).send("hi")
        assert link.recv() == "hi"
        link.close()
        a.close()

    def test_open_worker_transport_rejects_unknown(self):
        with pytest.raises(TransportError, match="unknown worker channel"):
            open_worker_transport(("smoke-signal", None))

    def test_listener_refuses_wrong_token(self):
        with SocketListener() as listener:
            good = SocketListener.fresh_token()
            bad = SocketListener.fresh_token()
            results = {}

            import threading

            def dial(token, key):
                try:
                    results[key] = connect_worker(listener.address, token)
                except TransportError as exc:
                    results[key] = exc

            t1 = threading.Thread(target=dial, args=(bad, "bad"))
            t2 = threading.Thread(target=dial, args=(good, "good"))
            t1.start()
            time.sleep(0.05)  # the impostor dials first
            t2.start()
            slot, accepted = listener.accept_worker({good: "w0"}, timeout=10.0)
            t1.join(timeout=10)
            t2.join(timeout=10)
            assert slot == "w0"
            accepted.send("welcome")
            assert results["good"].recv() == "welcome"
            accepted.close()
            results["good"].close()

    def test_listener_times_out_without_workers(self):
        with SocketListener() as listener:
            with pytest.raises(TransportError, match="no worker connected"):
                listener.accept_worker(
                    {SocketListener.fresh_token(): "w0"}, timeout=0.2
                )

    def test_connect_worker_unreachable(self):
        with pytest.raises(TransportError, match="cannot reach parent"):
            connect_worker(("127.0.0.1", 1), SocketListener.fresh_token(), timeout=0.5)


# ----------------------------------------------------------------------
# the reconnect/respawn policy: identical semantics on both transports
# ----------------------------------------------------------------------
def _doa_worker(channel, init=None):
    """A worker that dies on arrival: never handshakes, never serves."""
    return


#: the policies every respawn scenario must behave identically under
RETRY_POLICIES = {
    "single-shot": RetryPolicy(attempts=1, backoff_s=0.0),
    "backoff": RetryPolicy(attempts=3, backoff_s=0.01, multiplier=1.5),
}


@pytest.fixture(params=sorted(RETRY_POLICIES))
def retry_policy(request) -> RetryPolicy:
    return RETRY_POLICIES[request.param]


class TestRespawnPolicy:
    def _shard_init(self):
        graph = web_graph(40, 120, n_labels=3, seed=9)
        frag = partition(graph, 4, seed=9)
        from repro.core.depgraph import DependencyGraphs

        return (frag.extract_shard((0, 2)), DependencyGraphs(frag))

    def test_respawn_probes_a_live_worker(self, transport, retry_policy):
        """A fresh spawn under any policy serves the probe immediately."""
        init = self._shard_init()
        proc, link = respawn_worker(_shard_worker, init, transport, retry_policy)
        try:
            link.send(("stats", None))
            status, stats = link.recv()
            assert status == "ok"
            assert stats["fids"] == (0, 2)
        finally:
            link.send(("stop", None))
            proc.join(timeout=10)
            link.close()

    def test_respawn_after_kill_restores_service(self, transport, retry_policy):
        """Kill -> respawn yields a worker with the same shard, either
        channel: the reconnect semantics are transport-independent."""
        init = self._shard_init()
        proc, link = respawn_worker(_shard_worker, init, transport, retry_policy)
        proc.terminate()
        proc.join(timeout=10)
        link.close()
        proc2, link2 = respawn_worker(_shard_worker, init, transport, retry_policy)
        try:
            link2.send(("stats", None))
            status, stats = link2.recv()
            assert status == "ok"
            assert stats["fids"] == (0, 2)
        finally:
            link2.send(("stop", None))
            proc2.join(timeout=10)
            link2.close()

    def test_tcp_respawn_mints_a_fresh_token(self, monkeypatch, retry_policy):
        """Every TCP respawn re-authenticates: the token is minted per
        attempt, never reused from the dead worker's listener."""
        minted = []
        original = SocketListener.fresh_token

        def recording():
            token = original()
            minted.append(token)
            return token

        monkeypatch.setattr(
            SocketListener, "fresh_token", staticmethod(recording)
        )
        init = self._shard_init()
        for round_no in range(2):
            before = len(minted)
            proc, link = respawn_worker(_shard_worker, init, "tcp", retry_policy)
            assert len(minted) == before + 1
            link.send(("stop", None))
            proc.join(timeout=10)
            link.close()
        assert len(set(minted)) == len(minted), "a token was reused"

    def test_exhausted_policy_raises_with_attempt_count(
        self, transport, retry_policy
    ):
        """A dead-on-arrival worker exhausts the policy on both channels:
        the pipe path dies at the probe, the TCP path at the handshake."""
        init = self._shard_init()
        with pytest.raises(ProtocolError, match=f"{retry_policy.attempts} attempt"):
            respawn_worker(
                _doa_worker,
                init,
                transport,
                retry_policy,
                handshake_timeout=0.5,
            )

    def test_delays_grow_and_cap(self):
        policy = RetryPolicy(
            attempts=5, backoff_s=0.1, multiplier=2.0, max_backoff_s=0.3
        )
        assert list(policy.delays()) == [0.1, 0.2, 0.3, 0.3, 0.3]
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
