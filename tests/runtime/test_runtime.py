"""Unit tests for the runtime substrate: cost model, network, engine."""

import pytest

from repro.errors import ProtocolError
from repro.runtime.costmodel import CostModel
from repro.runtime.engine import SyncEngine, TickResult
from repro.runtime.messages import COORDINATOR, DATA_KINDS, Message, MessageKind
from repro.runtime.network import Network


class TestCostModel:
    def test_query_bytes(self):
        cost = CostModel()
        assert cost.query_bytes(5, 10) == 24 + 5 * 16 + 10 * 16

    def test_var_batch_bytes(self):
        cost = CostModel()
        assert cost.var_batch_bytes(3) == 24 + 36

    def test_subgraph_bytes(self):
        cost = CostModel()
        assert cost.subgraph_bytes(10, 20) == 24 + 10 * 12 + 20 * 16

    def test_transfer_seconds(self):
        cost = CostModel(bandwidth_bytes_per_s=1000.0)
        assert cost.transfer_seconds(500) == pytest.approx(0.5)

    def test_frozen(self):
        with pytest.raises(Exception):
            CostModel().latency_s = 5


class TestMessages:
    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Message(0, 1, MessageKind.VAR_UPDATE, None, -1)

    def test_data_kinds_exclude_bookkeeping(self):
        assert MessageKind.QUERY not in DATA_KINDS
        assert MessageKind.CONTROL not in DATA_KINDS
        assert MessageKind.RESULT not in DATA_KINDS
        assert MessageKind.VAR_UPDATE in DATA_KINDS
        assert MessageKind.SUBGRAPH in DATA_KINDS


class TestNetwork:
    def test_accounting_by_kind(self):
        net = Network(CostModel())
        net.send(Message(0, 1, MessageKind.VAR_UPDATE, None, 100))
        net.send(Message(0, 1, MessageKind.CONTROL, None, 16))
        assert net.data_bytes == 100
        assert net.total_bytes == 116
        assert net.data_message_count == 1
        assert net.breakdown() == {"var_update": 100, "control": 16}

    def test_round_buffering(self):
        net = Network(CostModel())
        net.send(Message(0, 1, MessageKind.VAR_UPDATE, "a", 10))
        assert net.has_pending
        inboxes = net.deliver()
        assert not net.has_pending
        assert [m.payload for m in inboxes[1]] == ["a"]
        assert net.round_bytes == [10]

    def test_round_bytes_exclude_control(self):
        net = Network(CostModel())
        net.send(Message(0, 1, MessageKind.CONTROL, None, 16))
        net.deliver()
        assert net.round_bytes == [0]


class _EchoProgram:
    """Forwards one token around a ring a fixed number of hops."""

    def __init__(self, fid: int, n: int, hops: int):
        self.fid = fid
        self.n = n
        self.hops = hops

    def _msg(self, hop):
        return Message(
            src=self.fid, dst=(self.fid + 1) % self.n,
            kind=MessageKind.VAR_UPDATE, payload=hop, size_bytes=10,
        )

    def on_start(self):
        if self.fid == 0:
            return TickResult(messages=[self._msg(1)], halted=True)
        return TickResult(messages=[], halted=True)

    def on_tick(self, round_no, inbox):
        out = []
        for message in inbox:
            if message.payload < self.hops:
                out.append(self._msg(message.payload + 1))
        return TickResult(messages=out, halted=True)

    def collect(self):
        return Message(self.fid, COORDINATOR, MessageKind.RESULT, None, 8)


class TestSyncEngine:
    def test_ring_terminates_with_correct_round_count(self):
        cost = CostModel()
        net = Network(cost)
        programs = {i: _EchoProgram(i, 3, hops=7) for i in range(3)}
        engine = SyncEngine(programs, net, cost)
        engine.run_fixpoint()
        # 7 hops -> 7 delivery rounds + the start round
        assert engine.n_rounds == 8
        assert net.data_message_count == 7

    def test_collect_results_metered(self):
        cost = CostModel()
        net = Network(cost)
        programs = {i: _EchoProgram(i, 2, hops=1) for i in range(2)}
        engine = SyncEngine(programs, net, cost)
        engine.run_fixpoint()
        results = engine.collect_results()
        assert len(results) == 2
        assert net.bytes_by_kind[MessageKind.RESULT] == 16

    def test_max_rounds_guard(self):
        cost = CostModel()
        net = Network(cost)
        programs = {i: _EchoProgram(i, 2, hops=10**9) for i in range(2)}
        engine = SyncEngine(programs, net, cost, max_rounds=50)
        with pytest.raises(ProtocolError):
            engine.run_fixpoint()

    def test_simulated_pt_includes_link_time(self):
        cost = CostModel(latency_s=0.5, bandwidth_bytes_per_s=1e12)
        net = Network(cost)
        programs = {i: _EchoProgram(i, 2, hops=2) for i in range(2)}
        engine = SyncEngine(programs, net, cost)
        engine.run_fixpoint()
        # 2 delivery rounds at 0.5s latency each
        assert engine.simulated_pt() >= 1.0

    def test_metrics_packaging(self):
        cost = CostModel()
        net = Network(cost)
        programs = {i: _EchoProgram(i, 2, hops=1) for i in range(2)}
        engine = SyncEngine(programs, net, cost)
        engine.run_fixpoint()
        metrics = engine.metrics("test", wall_seconds=1.0, supersteps=3)
        assert metrics.algorithm == "test"
        assert metrics.n_messages == 1
        assert metrics.extras == {"supersteps": 3}
        assert metrics.ds_kb == pytest.approx(metrics.ds_bytes / 1024)
        assert "test" in metrics.describe()
