"""Tests for the real-process executor (simulator validation)."""

import pytest

from repro.core import DgpmConfig, run_dgpm
from repro.graph.examples import example8_graph, figure1, figure1_fragmentation
from repro.graph.generators import random_labeled_graph
from repro.graph.pattern import Pattern
from repro.partition import random_partition
from repro.runtime.mp import run_dgpm_multiprocess
from repro.simulation import simulation


class TestMpExecutor:
    def test_figure1_matches_simulator(self):
        q, g, frag = figure1()
        config = DgpmConfig(enable_push=False)
        sim_run = run_dgpm(q, frag, config)
        mp_run = run_dgpm_multiprocess(q, frag, config)
        assert mp_run.relation == sim_run.relation == simulation(q, g)
        assert mp_run.metrics.n_messages == sim_run.metrics.n_messages

    def test_cascading_falsifications_across_processes(self):
        q, _, _ = figure1()
        g = example8_graph()
        frag = figure1_fragmentation(g)
        config = DgpmConfig(enable_push=False)
        mp_run = run_dgpm_multiprocess(q, frag, config)
        assert not mp_run.is_match
        assert mp_run.relation == simulation(q, g)
        assert mp_run.metrics.n_messages == run_dgpm(q, frag, config).metrics.n_messages

    def test_push_configuration_works_in_processes(self):
        q, g, frag = figure1()
        config = DgpmConfig(enable_push=True, push_threshold=0.0)
        mp_run = run_dgpm_multiprocess(q, frag, config)
        assert mp_run.relation == simulation(q, g)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_instances(self, seed):
        graph = random_labeled_graph(40, 160, n_labels=3, seed=seed)
        frag = random_partition(graph, 3, seed=seed)
        q = Pattern({"a": "L0", "b": "L1"}, [("a", "b"), ("b", "a")])
        config = DgpmConfig(enable_push=False)
        mp_run = run_dgpm_multiprocess(q, frag, config)
        assert mp_run.relation == simulation(q, graph)

    def test_metrics_shape(self):
        q, _, frag = figure1()
        mp_run = run_dgpm_multiprocess(q, frag, DgpmConfig(enable_push=False))
        assert mp_run.metrics.algorithm == "dGPM-mp"
        assert mp_run.metrics.pt_seconds > 0
        assert mp_run.metrics.n_rounds >= 1
