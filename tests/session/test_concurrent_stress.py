"""Concurrency stress suite: snapshot linearizability under real contention.

N reader threads hammer one :class:`ConcurrentSessionServer` while a writer
thread streams mutations through it.  The server's contract says each
returned result observed the graph at exactly the mutation stamp it reports;
the oracle here replays the writer's update list prefix-by-prefix on a
private copy of the graph and demands

    ``result.relation == simulation(query, graph_after_first_stamp_ops)``

for **every** result every reader ever got -- across all general-graph
algorithms the session serves, two partitioners, and both backends (the
process backend with a smaller schedule: replica lockstep is what's under
test, not throughput).

Every thread is joined with a timeout and asserted dead afterwards, so a
reader-writer deadlock fails the suite quickly even without the
``pytest-timeout`` ceiling CI adds on top.
"""

from __future__ import annotations

import random
import threading
from typing import Dict, List, Tuple

from repro import (
    ConcurrentSessionServer,
    citation_dag,
    hash_partition,
    random_partition,
    random_tree,
    simulation,
    tree_partition,
    web_graph,
)
from repro.bench.workloads import cyclic_pattern, dag_pattern, tree_pattern
from repro.graph.digraph import DiGraph
from repro.graph.pattern import Pattern

import pytest

PARTITIONERS = {
    "random": lambda g, seed: random_partition(g, 3, seed=seed),
    "hash": lambda g, seed: hash_partition(g, 3, seed=seed),
}

#: algorithms safe on arbitrary mutating graphs (dGPMd/dGPMt get dedicated
#: shape-preserving scenarios below)
GENERAL_ALGORITHMS = ["dgpm", "dgpmnopt", "dmes", "dishhk", "match"]

JOIN_TIMEOUT = 120.0


def _mutation_ops(graph: DiGraph, n_ops: int, rng: random.Random) -> List[Tuple]:
    """A valid-in-sequence update list, generated against a scratch copy."""
    scratch = graph.copy()
    labels = sorted(scratch.label_alphabet(), key=repr)
    deleted: List[Tuple] = []
    ops: List[Tuple] = []
    for step in range(n_ops):
        r = rng.random()
        if r < 0.5 and scratch.n_edges:
            edges = list(scratch.edges())
            u, v = edges[rng.randrange(len(edges))]
            scratch.remove_edge(u, v)
            deleted.append((u, v))
            ops.append(("delete", u, v))
        elif r < 0.8 and deleted:
            u, v = deleted.pop(rng.randrange(len(deleted)))
            scratch.add_edge(u, v)
            ops.append(("insert", u, v))
        else:
            node = ("stress", step)
            label = rng.choice(labels)
            scratch.add_node(node, label)
            ops.append(("add_node", node, label))
    return ops


def _replay(graph: DiGraph, ops: List[Tuple], n: int) -> DiGraph:
    """The graph after the first ``n`` updates (fresh copy each call)."""
    replayed = graph.copy()
    for op in ops[:n]:
        if op[0] == "delete":
            replayed.remove_edge(op[1], op[2])
        elif op[0] == "insert":
            replayed.add_edge(op[1], op[2])
        else:
            replayed.add_node(op[1], op[2])
    return replayed


def _stress(
    server: ConcurrentSessionServer,
    queries: List[Pattern],
    ops: List[Tuple],
    algorithm: str,
    seed: int,
    n_readers: int = 3,
    reads_per_reader: int = 8,
    batch: int = 1,
) -> List[Tuple[int, object]]:
    """Run readers against a writer; return [(query index, StampedResult)]."""
    results: List[Tuple[int, object]] = []
    failures: List[BaseException] = []
    barrier = threading.Barrier(n_readers + 1)

    def reader(idx: int) -> None:
        rng = random.Random(seed * 1000 + idx)
        try:
            barrier.wait(timeout=JOIN_TIMEOUT)
            for _ in range(reads_per_reader):
                qi = rng.randrange(len(queries))
                result = server.run(queries[qi], algorithm=algorithm)
                results.append((qi, result))  # list.append is atomic
        except BaseException as exc:
            failures.append(exc)

    def writer() -> None:
        try:
            barrier.wait(timeout=JOIN_TIMEOUT)
            for start in range(0, len(ops), batch):
                server.apply(ops[start:start + batch])
        except BaseException as exc:
            failures.append(exc)

    threads = [
        threading.Thread(target=reader, args=(i,), name=f"reader-{i}")
        for i in range(n_readers)
    ] + [threading.Thread(target=writer, name="writer")]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=JOIN_TIMEOUT)
        assert not t.is_alive(), f"{t.name} deadlocked (zero-deadlock gate)"
    assert not failures, f"thread raised: {failures[0]!r}"
    assert server.stamp == len(ops)
    return results


def _check_snapshots(
    graph: DiGraph,
    queries: List[Pattern],
    ops: List[Tuple],
    results: List[Tuple[int, object]],
) -> None:
    """Every result must equal the from-scratch oracle at its stamp."""
    oracle: Dict[Tuple[int, int], object] = {}
    observed_stamps = sorted({r.stamp for _, r in results})
    graphs = {s: _replay(graph, ops, s) for s in observed_stamps}
    for qi, result in results:
        key = (result.stamp, qi)
        if key not in oracle:
            oracle[key] = simulation(queries[qi], graphs[result.stamp])
        assert result.relation == oracle[key], (
            f"snapshot violation: query {qi} at stamp {result.stamp}"
        )


@pytest.mark.parametrize("partitioner", sorted(PARTITIONERS))
@pytest.mark.parametrize("algorithm", GENERAL_ALGORITHMS)
def test_readers_vs_writer_thread_backend(partitioner, algorithm, rng, rng_seed):
    seed = rng_seed % 1000
    graph = web_graph(40, 170, n_labels=4, seed=seed)
    initial = graph.copy()  # the oracle replays from here
    frag = PARTITIONERS[partitioner](graph, seed)
    queries = [
        cyclic_pattern(graph, 3, 4, seed=seed),
        Pattern({"a": "dom0", "b": "dom1"}, [("a", "b")]),
        Pattern({"p": "dom2"}),
    ]
    ops = _mutation_ops(graph, 8, rng)
    with ConcurrentSessionServer(frag, backend="thread", n_workers=4) as server:
        results = _stress(server, queries, ops, algorithm, seed)
    _check_snapshots(initial, queries, ops, results)


def test_readers_vs_batching_writer(rng, rng_seed):
    """Batched writes (apply of 3 ops at a time) keep snapshot semantics;
    readers only ever observe batch-boundary stamps."""
    seed = rng_seed % 1000
    graph = web_graph(40, 170, n_labels=4, seed=seed)
    initial = graph.copy()
    frag = random_partition(graph, 3, seed=seed)
    queries = [cyclic_pattern(graph, 3, 4, seed=seed)]
    ops = _mutation_ops(graph, 9, rng)
    with ConcurrentSessionServer(frag, backend="thread", n_workers=4) as server:
        results = _stress(server, queries, ops, "dgpm", seed, batch=3)
    boundary = {0, 3, 6, 9}
    assert {r.stamp for _, r in results} <= boundary
    _check_snapshots(initial, queries, ops, results)


def test_readers_vs_writer_process_backend(rng, rng_seed):
    """Replica lockstep: worker answers carry the right stamp snapshots."""
    seed = rng_seed % 1000
    graph = web_graph(35, 140, n_labels=4, seed=seed)
    initial = graph.copy()
    frag = random_partition(graph, 3, seed=seed)
    queries = [
        cyclic_pattern(graph, 3, 4, seed=seed),
        Pattern({"a": "dom0", "b": "dom1"}, [("a", "b")]),
    ]
    ops = _mutation_ops(graph, 5, rng)
    with ConcurrentSessionServer(frag, backend="process", n_workers=2) as server:
        results = _stress(
            server, queries, ops, "dgpm", seed, n_readers=2, reads_per_reader=5
        )
    _check_snapshots(initial, queries, ops, results)


def test_dgpmd_readers_vs_dag_safe_writer(rng, rng_seed):
    """dGPMd under deletions/re-insertions (cannot create a cycle)."""
    seed = rng_seed % 1000
    graph = citation_dag(80, 300, seed=seed)
    initial = graph.copy()
    frag = random_partition(graph, 3, seed=seed)
    queries = [dag_pattern(graph, diameter=2, n_nodes=4, n_edges=4, seed=s) for s in (0, 1)]
    scratch = graph.copy()
    deleted: List[Tuple] = []
    ops: List[Tuple] = []
    for step in range(8):
        if step % 3 != 2 or not deleted:
            edges = list(scratch.edges())
            u, v = edges[rng.randrange(len(edges))]
            scratch.remove_edge(u, v)
            deleted.append((u, v))
            ops.append(("delete", u, v))
        else:
            u, v = deleted.pop()
            scratch.add_edge(u, v)
            ops.append(("insert", u, v))
    with ConcurrentSessionServer(frag, backend="thread", n_workers=3) as server:
        results = _stress(server, queries, ops, "dgpmd", seed, n_readers=2)
    _check_snapshots(initial, queries, ops, results)


def test_dgpmt_readers_vs_leaf_growing_writer(rng, rng_seed):
    """dGPMt while the tree grows leaves; each (add_node, insert) pair is one
    atomic batch, so no reader ever sees the disconnected intermediate."""
    seed = rng_seed % 1000
    tree = random_tree(50, seed=seed)
    initial = tree.copy()
    frag = tree_partition(tree, 3, seed=seed)
    queries = [tree_pattern(tree, n_nodes=3, seed=s) for s in (0, 1)]
    labels = sorted(tree.label_alphabet(), key=repr)
    parents = [rng.choice(list(tree.nodes())) for _ in range(4)]
    batches = [
        [
            ("add_node", ("leaf", i), rng.choice(labels), frag.owner(parent)),
            ("insert", parent, ("leaf", i)),
        ]
        for i, parent in enumerate(parents)
    ]
    ops = [op for b in batches for op in b]
    results: List[Tuple[int, object]] = []
    failures: List[BaseException] = []
    barrier = threading.Barrier(3)

    def reader(idx: int) -> None:
        r = random.Random(seed + idx)
        try:
            barrier.wait(timeout=JOIN_TIMEOUT)
            for _ in range(6):
                qi = r.randrange(len(queries))
                results.append((qi, server.run(queries[qi], algorithm="dgpmt")))
        except BaseException as exc:
            failures.append(exc)

    def writer() -> None:
        try:
            barrier.wait(timeout=JOIN_TIMEOUT)
            for b in batches:
                server.apply(b)
        except BaseException as exc:
            failures.append(exc)

    with ConcurrentSessionServer(frag, backend="thread", n_workers=3) as server:
        threads = [threading.Thread(target=reader, args=(i,)) for i in range(2)]
        threads.append(threading.Thread(target=writer))
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=JOIN_TIMEOUT)
            assert not t.is_alive(), "deadlock in dgpmt stress"
        assert not failures, f"thread raised: {failures[0]!r}"
    # Only even (batch-boundary) stamps are observable.
    assert all(r.stamp % 2 == 0 for _, r in results)
    _check_snapshots(initial, queries, ops, results)


def test_coalesced_identical_queries_single_flight(rng_seed):
    """Concurrent identical cold queries coalesce into one protocol run
    (the cache's atomic get-or-compute), all observing the same stamp."""
    seed = rng_seed % 1000
    graph = web_graph(60, 250, n_labels=4, seed=seed)
    frag = random_partition(graph, 3, seed=seed)
    query = cyclic_pattern(graph, 3, 4, seed=seed)
    with ConcurrentSessionServer(frag, backend="thread", n_workers=6) as server:
        futures = [server.submit(query, algorithm="dgpm") for _ in range(6)]
        results = [f.result(timeout=JOIN_TIMEOUT) for f in futures]
    assert len({id(r.relation) for r in results}) <= 2  # one compute + shares
    session = server.session
    assert session.stats.cache_misses == 1
    assert session.stats.cache_hits == 5
    oracle = simulation(query, graph)
    assert all(r.relation == oracle for r in results)
