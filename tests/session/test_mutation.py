"""Tests for the SimulationSession mutation API and cache maintenance.

The contract (see :mod:`repro.session.session`): session-applied mutations
patch the resident fragmentation in place (``validate()`` always holds),
patch the dependency graphs instead of rebuilding them, and maintain the
result cache -- keeping entries whose answers cannot change, repairing warm
entries in ``O(|AFF|)``, and evicting only what may actually have changed.
"""

from __future__ import annotations

import pytest

from repro import (
    DgpmConfig,
    SimulationSession,
    partition,
    simulation,
    web_graph,
)
from repro.bench.workloads import cyclic_pattern
from repro.core.depgraph import DependencyGraphs
from repro.errors import GraphError, ReproError
from repro.graph.pattern import Pattern


@pytest.fixture()
def served_session():
    graph = web_graph(300, 1200, n_labels=6, seed=21)
    frag = partition(graph, 3, seed=21)
    session = SimulationSession(frag)
    queries = [cyclic_pattern(graph, 3, 4, seed=s) for s in range(3)]
    # Serve twice: the second pass hits the cache and promotes warm states.
    for _ in range(2):
        for q in queries:
            session.run(q, algorithm="dgpm")
    return graph, frag, session, queries


class TestMutationApi:
    def test_delete_edge_keeps_fragmentation_valid(self, served_session, rng):
        graph, frag, session, queries = served_session
        for _ in range(20):
            edges = list(graph.edges())
            u, v = edges[rng.randrange(len(edges))]
            outcome = session.delete_edge(u, v)
            assert outcome.kind == "delete"
            frag.validate()  # the acceptance-criterion invariant
        for q in queries:
            assert session.run(q, algorithm="dgpm").relation == simulation(q, graph)

    def test_deps_patched_not_rebuilt(self, served_session, rng):
        graph, frag, session, _ = served_session
        deps_before = session.deps
        deleted = []
        for _ in range(10):
            edges = list(graph.edges())
            u, v = edges[rng.randrange(len(edges))]
            session.delete_edge(u, v)
            deleted.append((u, v))
        u, v = deleted[0]
        session.insert_edge(u, v)
        session.add_node("fresh", "dom0")
        assert session.deps is deps_before  # same object, patched in place
        fresh = DependencyGraphs(frag)
        assert session.deps.watchers == fresh.watchers
        assert session.deps.owners == fresh.owners

    def test_mutations_do_not_invalidate(self, served_session):
        graph, _, session, queries = served_session
        edges = list(graph.edges())
        session.delete_edge(*edges[0])
        assert session.stats.invalidations == 0
        assert session.stats.mutations == 1

    def test_batched_apply(self, served_session):
        graph, frag, session, _ = served_session
        edges = list(graph.edges())
        (u1, v1), (u2, v2) = edges[0], edges[1]
        outcomes = session.apply(
            [
                ("delete", u1, v1),
                ("delete", u2, v2),
                ("insert", u1, v1),
                ("add_node", "batch-node", "dom1", 0),
            ]
        )
        assert [o.kind for o in outcomes] == ["delete", "delete", "insert", "add_node"]
        frag.validate()
        with pytest.raises(ReproError, match="unknown update kind"):
            session.apply([("relabel", 1, "x")])

    def test_mutation_errors_are_graph_errors(self, served_session):
        graph, _, session, _ = served_session
        with pytest.raises(GraphError):
            session.delete_edge("nope", "nada")
        u, v = next(iter(graph.edges()))
        with pytest.raises(GraphError):
            session.insert_edge(u, v)  # already present

    def test_invalidate_mode_drops_everything(self):
        graph = web_graph(200, 800, n_labels=5, seed=4)
        frag = partition(graph, 2, seed=4)
        session = SimulationSession(frag, maintenance="invalidate")
        q = cyclic_pattern(graph, 3, 4, seed=0)
        session.run(q, algorithm="dgpm")
        session.run(q, algorithm="dgpm")
        u, v = next(iter(graph.edges()))
        outcome = session.delete_edge(u, v)
        assert outcome.cache_evicted == 1
        assert session.stats.invalidations == 1
        after = session.run(q, algorithm="dgpm")
        assert "cache_hit" not in after.metrics.extras
        assert after.relation == simulation(q, graph)

    def test_unknown_maintenance_mode_rejected(self):
        graph = web_graph(50, 200, n_labels=3, seed=0)
        frag = partition(graph, 2, seed=0)
        with pytest.raises(ReproError, match="maintenance"):
            SimulationSession(frag, maintenance="yolo")


class TestCacheMaintenance:
    def test_irrelevant_delete_keeps_entries(self):
        """An edge whose label pair no query edge carries cannot change any
        answer: every cached entry survives and still hits."""
        graph = web_graph(200, 800, n_labels=8, seed=5)
        frag = partition(graph, 2, seed=5)
        session = SimulationSession(frag)
        q = Pattern({"a": "dom0", "b": "dom1"}, [("a", "b")])
        session.run(q, algorithm="dgpm")
        target = next(
            (u, v)
            for u, v in graph.edges()
            if not (graph.label(u) == "dom0" and graph.label(v) == "dom1")
        )
        outcome = session.delete_edge(*target)
        assert outcome.cache_kept == 1 and outcome.cache_evicted == 0
        again = session.run(q, algorithm="dgpm")
        assert again.metrics.extras.get("cache_hit") == 1.0
        assert again.relation == simulation(q, graph)

    def test_relevant_delete_evicts_cold_entry(self):
        graph = web_graph(200, 800, n_labels=4, seed=6)
        frag = partition(graph, 2, seed=6)
        session = SimulationSession(frag)
        q = Pattern({"a": "dom0", "b": "dom1"}, [("a", "b")])
        session.run(q, algorithm="dgpm")  # cached, never hit: no warm state
        target = next(
            (u, v)
            for u, v in graph.edges()
            if graph.label(u) == "dom0" and graph.label(v) == "dom1"
        )
        outcome = session.delete_edge(*target)
        assert outcome.cache_evicted == 1
        after = session.run(q, algorithm="dgpm")
        assert "cache_hit" not in after.metrics.extras
        assert after.relation == simulation(q, graph)

    def test_warm_entry_repaired_in_place(self, rng):
        """A hot query's answer is repaired by the warm incremental state:
        the next serve is still a cache hit, and the relation is fresh."""
        graph = web_graph(300, 1500, n_labels=3, seed=7)
        frag = partition(graph, 3, seed=7)
        session = SimulationSession(frag)
        q = Pattern({"a": "dom0", "b": "dom1"}, [("a", "b")])
        session.run(q, algorithm="dgpm")
        session.run(q, algorithm="dgpm")  # hit -> warm promotion
        assert len(session._warm) == 1

        # Delete label-relevant edges until the answer actually changes.
        changed = 0
        for _ in range(200):
            candidates = [
                (u, v)
                for u, v in graph.edges()
                if graph.label(u) == "dom0" and graph.label(v) == "dom1"
            ]
            if not candidates:
                break
            u, v = candidates[rng.randrange(len(candidates))]
            before = session.run(q, algorithm="dgpm").relation
            outcome = session.delete_edge(u, v)
            after = session.run(q, algorithm="dgpm")
            assert after.relation == simulation(q, graph)
            if outcome.cache_repaired:
                changed += 1
                assert after.metrics.extras.get("cache_hit") == 1.0
                assert after.metrics.extras.get("maintained", 0) >= 1.0
                assert after.relation != before
        assert changed >= 1, "no delete ever changed the hot answer"
        assert session.stats.entries_repaired == changed
        assert session.stats.invalidations == 0

    def test_insert_reevaluates_affected_warm_entry(self):
        graph = web_graph(200, 900, n_labels=3, seed=8)
        frag = partition(graph, 2, seed=8)
        session = SimulationSession(frag)
        q = Pattern({"a": "dom0", "b": "dom1"}, [("a", "b")])
        session.run(q, algorithm="dgpm")
        session.run(q, algorithm="dgpm")
        # Remove every witness of some matched pair, then re-add one.
        u, v = next(
            (u, v)
            for u, v in graph.edges()
            if graph.label(u) == "dom0" and graph.label(v) == "dom1"
        )
        session.delete_edge(u, v)
        assert session.run(q, algorithm="dgpm").relation == simulation(q, graph)
        session.insert_edge(u, v)
        after = session.run(q, algorithm="dgpm")
        assert after.relation == simulation(q, graph)
        assert session.stats.invalidations == 0

    def test_add_node_affects_childless_queries_only(self):
        graph = web_graph(150, 600, n_labels=4, seed=9)
        frag = partition(graph, 2, seed=9)
        session = SimulationSession(frag)
        point = Pattern({"p": "dom0"})          # childless: affected
        shaped = Pattern({"a": "dom1", "b": "dom2"}, [("a", "b")])  # not
        session.run(point, algorithm="dgpm")
        session.run(shaped, algorithm="dgpm")
        outcome = session.add_node("newbie", "dom0")
        assert outcome.cache_evicted == 1  # the point query (cold entry)
        assert outcome.cache_kept == 1     # the shaped query survives
        assert session.run(point, algorithm="dgpm").relation == simulation(point, graph)
        assert session.run(shaped, algorithm="dgpm").metrics.extras.get("cache_hit") == 1.0


class TestWarmSlotRotation:
    def test_late_hot_query_rotates_into_warm_set(self):
        """Warm slots track the currently hottest queries: when all slots
        are taken, a newly hot query retires the least-recently-hit one."""
        graph = web_graph(150, 600, n_labels=10, seed=12)
        frag = partition(graph, 2, seed=12)
        session = SimulationSession(frag, max_warm_states=2)
        early = [Pattern({"a": f"dom{i}"}) for i in (0, 1)]
        late = Pattern({"a": "dom2", "b": "dom3"}, [("a", "b")])
        for q in early:           # fill both slots
            session.run(q, algorithm="dgpm")
            session.run(q, algorithm="dgpm")
        assert len(session._warm) == 2
        warm_before = set(session._warm)
        session.run(late, algorithm="dgpm")
        session.run(late, algorithm="dgpm")  # hot now: must rotate in
        assert len(session._warm) == 2
        assert len(set(session._warm) - warm_before) == 1


class TestResultImmutability:
    """Satellite: cache hits share the relation object; it must be frozen."""

    def test_relation_attributes_frozen(self, served_session):
        _, _, session, queries = served_session
        result = session.run(queries[0], algorithm="dgpm")
        with pytest.raises(AttributeError):
            result.relation._matches = {}
        with pytest.raises(AttributeError):
            result.relation._is_match = True

    def test_relation_views_are_copies(self, served_session):
        graph, _, session, queries = served_session
        q = queries[0]
        first = session.run(q, algorithm="dgpm")
        # Mutate every mutable view a caller can reach.
        d = first.relation.as_dict()
        d.clear()
        rel_set = first.relation.as_relation()
        rel_set.clear()
        again = session.run(q, algorithm="dgpm")
        assert again.relation.as_dict() == simulation(q, graph).as_dict()

    def test_metrics_extras_do_not_poison_cache(self, served_session):
        _, _, session, queries = served_session
        q = queries[0]
        first = session.run(q, algorithm="dgpm")
        first.metrics.extras["attack"] = 666.0
        again = session.run(q, algorithm="dgpm")
        assert "attack" not in again.metrics.extras


class TestWarmCoversBaseGraph:
    """Satellite: warm() must also warm the base graph's lazy indexes."""

    def test_warm_builds_base_graph_indexes(self):
        graph = web_graph(100, 400, n_labels=4, seed=10)
        frag = partition(graph, 2, seed=10)
        SimulationSession(frag).warm()
        assert graph._label_index is not None
        assert graph._succ_label_counts is not None
        for f in frag:
            assert f.graph._label_index is not None
