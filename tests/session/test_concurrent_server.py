"""Functional tests for :class:`ConcurrentSessionServer` (both backends).

The stress/linearizability suite lives in ``test_concurrent_stress.py``;
here we pin down the API surface: stamps, batch atomicity, coalescing,
error propagation (including across the process boundary), routing, and
lifecycle.
"""

from __future__ import annotations

import threading

import pytest

from repro import (
    ConcurrentSessionServer,
    SimulationSession,
    partition,
    simulation,
    web_graph,
)
from repro.bench.workloads import cyclic_pattern
from repro.errors import GraphError, MutationBatchError, ReproError
from repro.graph.pattern import Pattern


@pytest.fixture()
def small_instance():
    graph = web_graph(150, 600, n_labels=5, seed=17)
    frag = partition(graph, 3, seed=17)
    queries = [cyclic_pattern(graph, 3, 4, seed=s) for s in range(3)]
    return graph, frag, queries


class TestThreadBackend:
    def test_parity_and_zero_stamp(self, small_instance):
        graph, frag, queries = small_instance
        with ConcurrentSessionServer(frag, backend="thread", n_workers=4) as server:
            results = server.run_many(queries, algorithm="dgpm")
            for q, r in zip(queries, results):
                assert r.stamp == 0
                assert r.relation == simulation(q, graph)

    def test_stamps_advance_per_mutation(self, small_instance):
        graph, frag, queries = small_instance
        with ConcurrentSessionServer(frag, backend="thread", n_workers=2) as server:
            edges = list(graph.edges())
            first = server.delete_edge(*edges[0])
            second = server.delete_edge(*edges[1])
            assert (first.stamp, second.stamp) == (1, 2)
            assert server.stamp == 2
            r = server.run(queries[0], algorithm="dgpm")
            assert r.stamp == 2
            assert r.relation == simulation(queries[0], graph)

    def test_apply_batch_is_atomic_to_readers(self, small_instance):
        """A batch's intermediate stamps are never observed by any query."""
        graph, frag, queries = small_instance
        with ConcurrentSessionServer(frag, backend="thread", n_workers=4) as server:
            edges = list(graph.edges())
            batch = [("delete", *edges[0]), ("delete", *edges[1]), ("delete", *edges[2])]
            stop = threading.Event()
            seen = []
            errors = []

            def hammer():
                while not stop.is_set():
                    try:
                        seen.append(server.run(queries[0], algorithm="dgpm").stamp)
                    except Exception as exc:  # pragma: no cover - fail loudly
                        errors.append(exc)
                        return

            readers = [threading.Thread(target=hammer) for _ in range(3)]
            for t in readers:
                t.start()
            outcomes = server.apply(batch)
            stop.set()
            for t in readers:
                t.join(timeout=30)
                assert not t.is_alive(), "reader deadlocked"
            assert not errors
            assert [o.stamp for o in outcomes] == [1, 2, 3]
            assert set(seen) <= {0, 3}, f"intermediate stamp observed: {sorted(set(seen))}"

    def test_mutation_error_does_not_wedge_writes(self, small_instance):
        graph, frag, queries = small_instance
        with ConcurrentSessionServer(frag, backend="thread") as server:
            with pytest.raises(GraphError):
                server.delete_edge("nope", "also-nope")
            # The writer path must stay serviceable after a failed ticket.
            edge = next(iter(graph.edges()))
            assert server.delete_edge(*edge).stamp == 1
            assert server.run(queries[0], algorithm="dgpm").stamp == 1

    def test_partial_batch_failure_reports_applied_prefix(self, small_instance):
        """A batch failing midway raises MutationBatchError carrying the
        stamped prefix; the prefix stays applied and serving continues."""
        graph, frag, queries = small_instance
        edges = list(graph.edges())
        with ConcurrentSessionServer(frag, backend="thread") as server:
            bad_batch = [
                ("delete", *edges[0]),
                ("delete", *edges[0]),  # already gone -> fails here
                ("delete", *edges[1]),  # never attempted
            ]
            with pytest.raises(MutationBatchError) as excinfo:
                server.apply(bad_batch)
            error = excinfo.value
            assert [o.stamp for o in error.applied] == [1]
            assert error.failed_op.as_tuple() == ("delete", *edges[0])
            assert isinstance(error.__cause__, GraphError)
            assert server.stamp == 1
            assert not graph.has_edge(*edges[0])
            assert graph.has_edge(*edges[1])  # tail op never ran
            result = server.run(queries[0], algorithm="dgpm")
            assert result.stamp == 1
            assert result.relation == simulation(queries[0], graph)

    def test_wrapping_an_existing_session(self, small_instance):
        _, frag, queries = small_instance
        session = SimulationSession(frag)
        session.run(queries[0], algorithm="dgpm")  # pre-warmed entry
        with ConcurrentSessionServer(session, backend="thread") as server:
            r = server.run(queries[0], algorithm="dgpm")
            assert r.metrics.extras.get("cache_hit") == 1.0  # shared cache
        with pytest.raises(ReproError, match="config"):
            ConcurrentSessionServer(session, cache_size=4)

    def test_submit_returns_futures(self, small_instance):
        graph, frag, queries = small_instance
        with ConcurrentSessionServer(frag, backend="thread", n_workers=4) as server:
            futures = [server.submit(q, algorithm="dgpm") for q in queries]
            for q, f in zip(queries, futures):
                assert f.result(timeout=60).relation == simulation(q, graph)

    def test_closed_server_rejects_work(self, small_instance):
        _, frag, queries = small_instance
        server = ConcurrentSessionServer(frag, backend="thread")
        server.close()
        server.close()  # idempotent
        with pytest.raises(ReproError, match="closed"):
            server.submit(queries[0])
        with pytest.raises(ReproError, match="closed"):
            server.delete_edge(0, 1)

    def test_rejects_unknown_backend_and_sources(self, small_instance):
        _, frag, _ = small_instance
        with pytest.raises(ReproError, match="backend"):
            ConcurrentSessionServer(frag, backend="fiber")
        with pytest.raises(ReproError, match="n_workers"):
            ConcurrentSessionServer(frag, n_workers=0)
        with pytest.raises(ReproError, match="cannot serve"):
            ConcurrentSessionServer("not a fragmentation")

    def test_concurrent_writers_all_apply(self, small_instance):
        """Mutations racing from many threads serialize; stamps are unique
        and the final graph reflects every applied update."""
        graph, frag, _ = small_instance
        edges = list(graph.edges())[:8]
        stamps = []
        with ConcurrentSessionServer(frag, backend="thread", n_workers=4) as server:
            def delete(edge):
                stamps.append(server.delete_edge(*edge).stamp)

            threads = [threading.Thread(target=delete, args=(e,)) for e in edges]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
                assert not t.is_alive(), "writer deadlocked"
            assert sorted(stamps) == list(range(1, len(edges) + 1))
            assert server.stamp == len(edges)
            for u, v in edges:
                assert not graph.has_edge(u, v)
            frag.validate()


class TestProcessBackend:
    def test_parity_mutation_and_affinity(self, small_instance):
        graph, frag, queries = small_instance
        with ConcurrentSessionServer(frag, backend="process", n_workers=2) as server:
            results = server.run_many(queries, algorithm="dgpm")
            for q, r in zip(queries, results):
                assert r.relation == simulation(q, graph)
            # Repeat: sticky routing sends it back to the same replica's cache.
            again = server.run(queries[0], algorithm="dgpm")
            assert again.metrics.extras.get("cache_hit") == 1.0
            # Mutate: replicas stay in lockstep with the parent session.
            edge = next(iter(graph.edges()))
            assert server.delete_edge(*edge).stamp == 1
            after = server.run(queries[0], algorithm="dgpm")
            assert after.stamp == 1
            assert after.relation == simulation(queries[0], graph)
            stats = server.worker_stats()
            assert sum(s.queries_served for s in stats) == len(queries) + 2
            assert all(s.mutations == 1 for s in stats)

    def test_worker_error_propagates(self, small_instance):
        _, frag, queries = small_instance
        with ConcurrentSessionServer(frag, backend="process", n_workers=1) as server:
            with pytest.raises(ReproError, match="unknown algorithm"):
                server.run(queries[0], algorithm="nonsense")
            # The worker survives the failed query and keeps serving.
            ok = server.run(queries[0], algorithm="dgpm")
            assert ok.relation is not None

    def test_deps_kwarg_reaches_replicas_without_collision(self, small_instance):
        """A caller-supplied deps= must not crash workers (deps ship via the
        spawn args; the kwarg is consumed by the parent session only)."""
        from repro.core.depgraph import DependencyGraphs

        graph, frag, queries = small_instance
        deps = DependencyGraphs(frag)
        with ConcurrentSessionServer(
            frag, backend="process", n_workers=1, deps=deps
        ) as server:
            assert server.session.deps is deps
            r = server.run(queries[0], algorithm="dgpm")
            assert r.relation == simulation(queries[0], graph)

    def test_close_never_fails_an_applied_mutation(self, small_instance):
        """close() drains in-flight mutation tickets before stopping workers:
        a racing writer either succeeds or is refused as 'closed' -- it is
        never told the worker died under its already-applied mutation."""
        graph, frag, _ = small_instance
        edges = list(graph.edges())[:4]
        server = ConcurrentSessionServer(frag, backend="process", n_workers=1)
        outcomes, refusals, hard_failures = [], [], []

        def mutate(edge):
            try:
                outcomes.append(server.delete_edge(*edge))
            except ReproError as exc:
                (refusals if "closed" in str(exc) else hard_failures).append(exc)

        threads = [threading.Thread(target=mutate, args=(e,)) for e in edges]
        for t in threads:
            t.start()
        server.close()
        for t in threads:
            t.join(timeout=60)
            assert not t.is_alive(), "writer deadlocked against close()"
        assert not hard_failures, f"applied mutation reported dead worker: {hard_failures[0]!r}"
        assert len(outcomes) + len(refusals) == len(edges)
        assert server.stamp == len(outcomes)

    def test_dead_worker_raises_instead_of_hanging(self, small_instance):
        """A killed worker surfaces as ProtocolError on the next dispatch
        (the parent closed its copy of the child pipe end, so recv hits EOF)."""
        from repro.errors import ProtocolError

        _, frag, queries = small_instance
        with ConcurrentSessionServer(frag, backend="process", n_workers=1) as server:
            server.run(queries[0], algorithm="dgpm")
            worker = server._workers[0]
            worker.process.terminate()
            worker.process.join(timeout=10)
            with pytest.raises(ProtocolError, match="died"):
                server.run(queries[1], algorithm="dgpm")
            # The only worker is dead: routing reports the pool state.
            with pytest.raises(ProtocolError, match="every worker"):
                server.run(queries[1], algorithm="dgpm")

    def test_dead_worker_is_routed_around(self, small_instance):
        """After one replica dies, its pinned queries re-route to survivors
        (one failing dispatch, then served) and mutations keep flowing."""
        from repro.errors import ProtocolError

        graph, frag, queries = small_instance
        with ConcurrentSessionServer(frag, backend="process", n_workers=2) as server:
            for q in queries:
                server.run(q, algorithm="dgpm")  # pin every digest
            victim_digest = next(iter(server._affinity))
            victim = server._affinity[victim_digest]
            pinned = [
                q for q in queries
                if server._affinity[server.session.canonical_form_of(q).digest]
                is victim
            ]
            victim.process.terminate()
            victim.process.join(timeout=10)
            q = pinned[0]
            with pytest.raises(ProtocolError, match="died"):
                server.run(q, algorithm="dgpm")
            retried = server.run(q, algorithm="dgpm")  # re-pinned to survivor
            assert retried.relation == simulation(q, graph)
            # Mutations skip the corpse instead of desyncing the pool.
            out = server.delete_edge(*next(iter(graph.edges())))
            assert out.stamp == 1
            after = server.run(q, algorithm="dgpm")
            assert after.stamp == 1
            assert after.relation == simulation(q, graph)

    def test_worker_stats_requires_process_backend(self, small_instance):
        _, frag, _ = small_instance
        with ConcurrentSessionServer(frag, backend="thread") as server:
            with pytest.raises(ReproError, match="process backend"):
                server.worker_stats()


class TestStampedResultSurface:
    def test_is_match_view(self, small_instance):
        graph, frag, queries = small_instance
        with ConcurrentSessionServer(frag, backend="thread") as server:
            r = server.run(queries[0], algorithm="dgpm")
            assert r.is_match == r.relation.is_match
            miss = server.run(
                Pattern({"q": "no-such-label"}), algorithm="dgpm"
            )
            assert not miss.is_match
