"""Fault injection against the sharded backend: kills are survivable.

The deterministic :class:`FaultPlan` kills/drops/delays at exact message
boundaries, so every scenario replays from its seed alone (the seed is in
the test output on failure).  The contract under test, per ISSUE 8:

* a killed worker is respawned (or its slot evicted under an exhausted
  policy) and its fragments re-shipped -- the client never hangs;
* a mutation batch is never lost: a worker that missed one is replaced by
  a respawn that re-extracts from the parent's post-batch fragmentation;
* every surviving answer still equals the from-scratch replay oracle at
  its stamp.
"""

from __future__ import annotations

from repro import (
    ConcurrentSessionServer,
    hash_partition,
    simulation,
    web_graph,
)
from repro.bench.workloads import cyclic_pattern
from repro.errors import ProtocolError
from repro.runtime.transport import FaultPlan, RetryPolicy

import pytest

from tests.session.test_concurrent_stress import _mutation_ops, _replay


def _fixture(seed: int, n_fragments: int = 6):
    graph = web_graph(50, 180, n_labels=4, seed=seed)
    frag = hash_partition(graph, n_fragments, seed=seed)
    query = cyclic_pattern(graph, 3, 4, seed=seed)
    return graph, frag, query


# ----------------------------------------------------------------------
# FaultPlan determinism
# ----------------------------------------------------------------------

def test_seeded_plan_is_deterministic():
    for seed in range(20):
        a = FaultPlan.seeded(seed, n_slots=4)
        b = FaultPlan.seeded(seed, n_slots=4)
        assert a.kills == b.kills
        assert list(a.kills.values())[0] in range(4, 40)


def test_kill_fires_once_per_slot():
    plan = FaultPlan(seed=1, kills={0: 2})
    assert plan.decide(0, 1) is None
    assert plan.decide(0, 5) == "kill"
    assert plan.decide(0, 6) is None  # one-shot: respawned links survive
    assert plan.events == [(0, 5, "kill")]


def test_drop_is_consumed_and_recorded():
    plan = FaultPlan(seed=2, drops=[(1, 3)])
    assert plan.decide(1, 3) == "drop"
    assert plan.decide(1, 3) is None
    assert plan.events == [(1, 3, "drop")]


# ----------------------------------------------------------------------
# kill mid-stream: respawn + re-ship, correct answers, no hang
# ----------------------------------------------------------------------

@pytest.mark.parametrize("fault_seed", [3, 11, 29])
def test_seeded_kill_mid_stream_recovers(fault_seed, rng_seed):
    seed = rng_seed % 1000
    graph, frag, query = _fixture(seed)
    oracle = simulation(query, graph)
    plan = FaultPlan.seeded(fault_seed, n_slots=3, kill_window=(2, 20))
    with ConcurrentSessionServer(
        frag, backend="sharded", n_workers=3, fault_plan=plan
    ) as server:
        for _ in range(12):  # enough traffic to cross the kill boundary
            result = server.run(query, algorithm="dgpm")
            assert result.relation == oracle, f"fault seed {fault_seed}"
        assert any(action == "kill" for _, _, action in plan.events), (
            f"kill never fired (fault seed {fault_seed}): {plan.events}"
        )
        assert server.respawns >= 1
        # the respawned worker owns its slot's fragments again (re-ship)
        stats = server.shard_stats()
        owned = sorted(fid for s in stats for fid in s["fids"])
        assert owned == sorted(f.fid for f in frag)


def test_dropped_frame_surfaces_and_heals(rng_seed):
    seed = rng_seed % 1000
    graph, frag, query = _fixture(seed)
    oracle = simulation(query, graph)
    plan = FaultPlan(seed=7, drops=[(0, 3)])
    with ConcurrentSessionServer(
        frag, backend="sharded", n_workers=2, fault_plan=plan
    ) as server:
        for _ in range(6):
            assert server.run(query, algorithm="dgpm").relation == oracle
        assert (0, 3, "drop") in plan.events


def test_no_lost_mutation_batch_after_kill(rng, rng_seed):
    """A worker killed before/while a batch lands is respawned from the
    parent's post-batch fragmentation: every later answer sees the batch."""
    seed = rng_seed % 1000
    graph, frag, query = _fixture(seed)
    initial = graph.copy()
    ops = _mutation_ops(graph, 10, rng)
    plan = FaultPlan.seeded(seed, n_slots=3, kill_window=(2, 25))
    with ConcurrentSessionServer(
        frag, backend="sharded", n_workers=3, fault_plan=plan
    ) as server:
        for start in range(0, len(ops), 2):
            outcomes = server.apply(ops[start:start + 2])
            stamp = outcomes[-1].stamp
            result = server.run(query, algorithm="dgpm")
            assert result.stamp == stamp
            expected = simulation(query, _replay(initial, ops, stamp))
            assert result.relation == expected, (
                f"stamp {stamp} diverged (graph seed {seed}, "
                f"fault plan {plan!r})"
            )
        assert server.stamp == len(ops)


def test_delays_jitter_without_breaking_answers(rng_seed):
    seed = rng_seed % 1000
    graph, frag, query = _fixture(seed)
    oracle = simulation(query, graph)
    plan = FaultPlan(seed=5, delay_every=7, delay_s=0.0005)
    with ConcurrentSessionServer(
        frag, backend="sharded", n_workers=2, fault_plan=plan
    ) as server:
        for _ in range(4):
            assert server.run(query, algorithm="dgpm").relation == oracle
        assert any(action == "delay" for _, _, action in plan.events)


# ----------------------------------------------------------------------
# respawn exhaustion: the slot leaves the ring, service continues
# ----------------------------------------------------------------------

def test_exhausted_respawn_evicts_slot_and_reships_migrated(
    monkeypatch, rng_seed
):
    seed = rng_seed % 1000
    graph, frag, query = _fixture(seed)
    oracle = simulation(query, graph)
    import repro.runtime.mp as mp_mod

    def never_spawns(*args, **kwargs):
        raise ProtocolError("injected: respawn exhausted")

    with ConcurrentSessionServer(
        frag,
        backend="sharded",
        n_workers=3,
        respawn=RetryPolicy(attempts=1, backoff_s=0.0),
    ) as server:
        assert server.run(query, algorithm="dgpm").relation == oracle
        old_ring = server.ring
        victim = server._shards[0]
        victim.process.terminate()
        victim.process.join(timeout=10)
        monkeypatch.setattr(mp_mod, "respawn_worker", never_spawns)
        result = server.run(query, algorithm="dgpm")
        assert result.relation == oracle
        assert len(server.ring.workers) == 2
        assert victim.slot not in server.ring.workers
        # only the dead slot's fragments moved; survivors kept theirs
        moved = old_ring.moved(server.ring)
        assert set(moved) == set(old_ring.fragments_of(victim.slot))
        stats = server.shard_stats()
        owned = sorted(fid for s in stats for fid in s["fids"])
        assert owned == sorted(f.fid for f in frag)


def test_all_workers_dead_raises_instead_of_hanging(monkeypatch, rng_seed):
    seed = rng_seed % 1000
    graph, frag, query = _fixture(seed, n_fragments=4)
    import repro.runtime.mp as mp_mod

    def never_spawns(*args, **kwargs):
        raise ProtocolError("injected: respawn exhausted")

    with ConcurrentSessionServer(
        frag,
        backend="sharded",
        n_workers=2,
        respawn=RetryPolicy(attempts=1, backoff_s=0.0),
    ) as server:
        for handle in list(server._shards):
            handle.process.terminate()
            handle.process.join(timeout=10)
        monkeypatch.setattr(mp_mod, "respawn_worker", never_spawns)
        with pytest.raises(ProtocolError, match="every shard worker"):
            server.run(query, algorithm="dgpm")


def test_plain_worker_kill_respawns_without_a_fault_plan(rng_seed):
    """Respawn works for real process death, not just injected faults."""
    seed = rng_seed % 1000
    graph, frag, query = _fixture(seed)
    oracle = simulation(query, graph)
    with ConcurrentSessionServer(frag, backend="sharded", n_workers=3) as server:
        assert server.run(query, algorithm="dgpm").relation == oracle
        victim = server._shards[1]
        victim.process.terminate()
        victim.process.join(timeout=10)
        assert server.run(query, algorithm="dgpm").relation == oracle
        assert server.respawns == 1
        assert len(server.ring.workers) == 3  # no eviction: the respawn took
