"""Online repartitioning: answer-invariance, placement moves, traffic wiring.

The headline contract is the per-stamp replay oracle: interleave a mutation
feed with queries, trigger :meth:`ConcurrentSessionServer.rebalance` in the
middle, and every stamped result -- before, across, and after the migration
-- must equal a from-scratch simulation of the graph after its stamp's
mutations.  Placement is invisible to answers; only throughput may change.
"""

from __future__ import annotations

import pytest

from repro import (
    ConcurrentSessionServer,
    hash_partition,
    simulation,
    web_graph,
)
from repro.bench.workloads import cyclic_pattern
from repro.errors import ReproError
from repro.graph.digraph import DiGraph
from repro.session.sharding import HashRing


def _instance(seed=23):
    graph = web_graph(160, 700, n_labels=5, seed=seed)
    frag = hash_partition(graph, 6, seed=seed)
    queries = [cyclic_pattern(graph, 3, 4, seed=s) for s in range(3)]
    return graph, frag, queries


def _replay_oracle(graph_seed, stamped, mutations):
    """Check each (query, relation, stamp) against a fresh replay."""
    for query, relation, stamp in stamped:
        replay = web_graph(160, 700, n_labels=5, seed=graph_seed)
        for kind, u, v in mutations[:stamp]:
            if kind == "delete":
                replay.remove_edge(u, v)
            else:
                replay.add_edge(u, v)
        assert relation == simulation(query, replay), (
            f"stamp {stamp} diverged from replay"
        )


@pytest.mark.parametrize(
    "backend,kwargs",
    [
        ("thread", {"n_workers": 2}),
        ("process", {"n_workers": 2}),
        ("sharded", {"n_workers": 2}),
    ],
)
def test_rebalance_mid_feed_is_answer_invariant(backend, kwargs):
    """The per-stamp replay oracle across an online migration, per backend."""
    seed = 23
    graph, frag, queries = _instance(seed)
    edges = list(graph.edges())
    mutations = [("delete", *edges[i]) for i in range(6)]
    stamped = []
    with ConcurrentSessionServer(frag, backend=backend, **kwargs) as server:
        for i, mutation in enumerate(mutations):
            out = server.delete_edge(mutation[1], mutation[2])
            assert out.stamp == i + 1
            result = server.run(queries[i % len(queries)], algorithm="dgpm")
            assert result.stamp == i + 1
            stamped.append((queries[i % len(queries)], result.relation, result.stamp))
            if i == 2:  # migrate mid-feed, then keep mutating
                outcome = server.rebalance()
                assert outcome.mode == "repartition"
                assert outcome.stamp == 3  # placement never advances the stamp
                assert server.rebalances == 1
                for query in queries:
                    post = server.run(query, algorithm="dgpm")
                    assert post.stamp == 3
                    stamped.append((query, post.relation, 3))
    _replay_oracle(seed, stamped, mutations)


def test_rebalance_improves_cut_and_boundary():
    graph, frag, queries = _instance()
    with ConcurrentSessionServer(frag, backend="thread", n_workers=2) as server:
        for query in queries:
            server.run(query, algorithm="dgpm")
        outcome = server.rebalance(seed=3)
        # hash_partition ignores locality entirely; the KL refinement must
        # find a strictly better cut on a locality-heavy generator graph.
        assert outcome.cut_after < outcome.cut_before
        assert outcome.boundary_after < outcome.boundary_before
        assert outcome.moved > 0
        snap = server.partition_snapshot()
        assert snap.n_crossing_edges == outcome.cut_after
        assert snap.total_boundary == outcome.boundary_after


def test_place_mode_requires_sharded_backend():
    _, frag, _ = _instance()
    with ConcurrentSessionServer(frag, backend="thread") as server:
        with pytest.raises(ReproError, match="sharded"):
            server.rebalance(mode="place")
        with pytest.raises(ReproError, match="unknown rebalance mode"):
            server.rebalance(mode="swap")


def test_place_mode_moves_hot_fragments_between_workers():
    graph, frag, queries = _instance()
    with ConcurrentSessionServer(frag, backend="sharded", n_workers=2) as server:
        before = server.ring.assignment()
        hot_slot = server.ring.owner_of(0)
        hot_fids = [f for f in server.ring.fragments if server.ring.owner_of(f) == hot_slot]
        traffic = {fid: 1000 for fid in hot_fids}
        outcome = server.rebalance(mode="place", traffic=traffic)
        assert outcome.mode == "place"
        assert outcome.moved > 0
        assert outcome.cut_before == outcome.cut_after  # placement only
        after = server.ring.assignment()
        assert before != after
        # Serving still works and matches the oracle on the migrated pool.
        for query in queries:
            assert server.run(query, algorithm="dgpm").relation == simulation(
                query, graph
            )


def test_traffic_counters_attribute_queries_and_mutations():
    graph, frag, queries = _instance()
    with ConcurrentSessionServer(frag, backend="thread", n_workers=2) as server:
        server.run(queries[0], algorithm="dgpm")
        server.run(queries[0], algorithm="dgpm")  # hit: bumps from stored fids
        stats = server.stats
        assert stats.fragment_queries
        assert sum(stats.fragment_queries.values()) >= 2 * len(
            set(stats.fragment_queries)
        ) or stats.fragment_queries
        u, v = next(iter(graph.edges()))
        server.delete_edge(u, v)
        assert stats.fragment_mutations
        merged = stats.traffic_snapshot()
        assert all(merged[f] >= c for f, c in stats.fragment_mutations.items())
        stats.reset_fragment_traffic()
        assert not stats.fragment_queries and not stats.fragment_mutations


def test_traffic_counter_bound_folds_into_overflow_key():
    from repro.session.session import SessionStats

    stats = SessionStats()
    stats.MAX_FRAGMENT_KEYS = 4  # class attr shadowed per-instance for the test
    stats.bump_fragment("fragment_queries", range(10))
    assert len(stats.fragment_queries) <= 5  # 4 tracked + overflow key
    assert stats.fragment_queries[-1] == 6  # spill is exact
    assert sum(stats.fragment_queries.values()) == 10


def test_sharded_coordinator_attributes_traffic():
    graph, frag, queries = _instance()
    with ConcurrentSessionServer(frag, backend="sharded", n_workers=2) as server:
        server.run(queries[0], algorithm="dgpm")
        assert server.stats.fragment_queries  # bumped at assemble time


def test_hash_ring_rebalanced_is_deterministic_and_minimal():
    ring = HashRing((0, 1, 2), tuple(range(9)))
    flat = ring.rebalanced({})
    assert flat.assignment() == ring.assignment()  # balanced input: no moves
    hot = {fid: 900 for fid in ring.fragments_of(0)}
    moved = ring.moved(ring.rebalanced(hot))
    assert moved  # hot slot sheds load
    assert all(src == 0 for src, _ in moved.values())
    again = ring.moved(ring.rebalanced(hot))
    assert moved == again  # pure function of (ring, weights)
    # never strips a slot below one fragment
    rebalanced = ring.rebalanced(hot)
    assert all(rebalanced.fragments_of(slot) for slot in rebalanced.workers)


def test_swap_fragmentation_rejects_different_graph():
    graph, frag, _ = _instance()
    other = DiGraph({i: "A" for i in range(5)})
    other_frag = hash_partition(other, 2, seed=0)
    from repro.session.session import SimulationSession

    session = SimulationSession(frag)
    with pytest.raises(ReproError, match="same graph"):
        session.swap_fragmentation(other_frag)


def test_stats_reply_carries_partition_snapshot_over_the_wire():
    from repro.net import codec
    from repro.net.protocol import StatsReply

    graph, frag, queries = _instance()
    with ConcurrentSessionServer(frag, backend="thread", n_workers=2) as server:
        server.run(queries[0], algorithm="dgpm")
        reply = StatsReply(
            stats=server.stats,
            stamp=server.stamp,
            backend=server.backend,
            n_workers=server.n_workers,
            partition=server.partition_snapshot(),
        )
        back = codec.decode(codec.encode(reply))
        assert back.partition == server.partition_snapshot()
        assert back.stats.fragment_queries == server.stats.fragment_queries
