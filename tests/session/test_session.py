"""Tests for the resident SimulationSession layer.

The contract under test: serving a query through a session is *exactly* the
one-shot ``run_*`` evaluation -- same relation, same metered protocol -- with
per-graph setup amortized, repeated queries answered from the LRU cache, and
any mutation of a resident graph invalidating every derived structure.
"""

from __future__ import annotations

import pytest

from repro import (
    DgpmConfig,
    SimulationSession,
    citation_dag,
    partition,
    random_tree,
    run_dgpm,
    run_dgpmd,
    run_dgpmt,
    run_dishhk,
    run_dmes,
    simulation,
    tree_partition,
    web_graph,
)
from repro.bench.workloads import cyclic_pattern, dag_pattern, tree_pattern
from repro.core.dgpm import execute_dgpm
from repro.graph.pattern import Pattern
from repro.session import LruResultCache, canonical_query_key


@pytest.fixture(scope="module")
def web_instance():
    graph = web_graph(800, 4000, n_labels=12, seed=3)
    frag = partition(graph, 4, seed=3, vf_ratio=0.25)
    queries = [cyclic_pattern(graph, 4, 6, seed=s) for s in range(3)]
    return graph, frag, queries


class TestParity:
    """session.run_many == fresh one-shot run_* for all five algorithms."""

    def test_dgpm_parity(self, web_instance):
        graph, frag, queries = web_instance
        session = SimulationSession(frag)
        served = session.run_many(queries, algorithm="dgpm")
        for query, result in zip(queries, served):
            fresh = run_dgpm(query, frag)
            assert result.relation == fresh.relation
            assert result.relation == simulation(query, graph)
            assert result.metrics.ds_bytes == fresh.metrics.ds_bytes
            assert result.metrics.n_messages == fresh.metrics.n_messages

    def test_dmes_parity(self, web_instance):
        graph, frag, queries = web_instance
        session = SimulationSession(frag)
        served = session.run_many(queries[:2], algorithm="dmes")
        for query, result in zip(queries, served):
            fresh = run_dmes(query, frag)
            assert result.relation == fresh.relation
            assert result.metrics.ds_bytes == fresh.metrics.ds_bytes

    def test_dishhk_parity(self, web_instance):
        graph, frag, queries = web_instance
        session = SimulationSession(frag)
        served = session.run_many(queries[:2], algorithm="dishhk")
        for query, result in zip(queries, served):
            fresh = run_dishhk(query, frag)
            assert result.relation == fresh.relation
            assert result.metrics.ds_bytes == fresh.metrics.ds_bytes

    def test_dgpmd_parity(self):
        graph = citation_dag(600, 2400, seed=5)
        frag = partition(graph, 4, seed=5)
        queries = [dag_pattern(graph, diameter=2, n_nodes=5, n_edges=6, seed=s) for s in (0, 1)]
        session = SimulationSession(frag)
        served = session.run_many(queries, algorithm="dgpmd")
        for query, result in zip(queries, served):
            fresh = run_dgpmd(query, frag)
            assert result.relation == fresh.relation
            assert result.relation == simulation(query, graph)
            assert result.metrics.ds_bytes == fresh.metrics.ds_bytes

    def test_dgpmt_parity(self):
        tree = random_tree(120, seed=2)
        frag = tree_partition(tree, 4, seed=2)
        queries = [tree_pattern(tree, n_nodes=3, seed=s) for s in (0, 1)]
        session = SimulationSession(frag)
        served = session.run_many(queries, algorithm="dgpmt")
        for query, result in zip(queries, served):
            fresh = run_dgpmt(query, frag)
            assert result.relation == fresh.relation
            assert result.relation == simulation(query, tree)

    def test_auto_dispatch(self, web_instance):
        _, frag, queries = web_instance
        session = SimulationSession(frag)
        assert session.run(queries[0]).metrics.algorithm == "dGPM"
        tree = random_tree(60, seed=1)
        tsession = SimulationSession(tree_partition(tree, 3, seed=1))
        q = Pattern({"q": tree.label(0)})
        assert tsession.run(q).metrics.algorithm == "dGPMt"

    def test_random_streams_match_oracle(self, rng):
        for trial in range(4):
            n = rng.randint(30, 80)
            graph = web_graph(n, 4 * n, n_labels=6, seed=trial)
            frag = partition(graph, rng.randint(2, 5), seed=trial)
            session = SimulationSession(frag)
            for s in range(2):
                try:
                    query = cyclic_pattern(graph, 3, 4, seed=s)
                except Exception:
                    continue
                result = session.run(query, algorithm="dgpm")
                assert result.relation == simulation(query, graph)


class TestCaching:
    def test_cache_hit_metrics_reported(self, web_instance):
        _, frag, queries = web_instance
        session = SimulationSession(frag)
        first = session.run(queries[0], algorithm="dgpm")
        second = session.run(queries[0], algorithm="dgpm")
        assert "cache_hit" not in first.metrics.extras
        assert second.metrics.extras["cache_hit"] == 1.0
        assert second.relation == first.relation
        assert session.stats.queries_served == 2
        assert session.stats.cache_hits == 1
        assert session.stats.cache_misses == 1
        assert session.stats.hit_rate == pytest.approx(0.5)

    def test_canonical_key_ignores_enumeration_order(self):
        a = Pattern({"x": "A", "y": "B"}, [("x", "y"), ("y", "x")])
        b = Pattern({"y": "B", "x": "A"}, [("y", "x"), ("x", "y")])
        assert canonical_query_key(a) == canonical_query_key(b)

    def test_isomorphic_rename_hits_and_translates(self, web_instance):
        """A renamed isomorphic query is a cache hit, and the served relation
        is keyed by the *hitting* pattern's node names."""
        graph, frag, queries = web_instance
        session = SimulationSession(frag)
        q = queries[0]
        session.run(q, algorithm="dgpm")
        nodes = list(q.nodes())
        rename = {u: ("client", i) for i, u in enumerate(nodes)}
        renamed = Pattern(
            {rename[u]: q.label(u) for u in nodes},
            [(rename[a], rename[b]) for a, b in q.edges()],
        )
        served = session.run(renamed, algorithm="dgpm")
        assert served.metrics.extras.get("cache_hit") == 1.0
        assert session.stats.cache_hits == 1
        assert served.relation == simulation(renamed, graph)

    def test_distinct_configs_do_not_collide(self, web_instance):
        _, frag, queries = web_instance
        session = SimulationSession(frag)
        plain = session.run(queries[0], algorithm="dgpm")
        nopt = session.run(
            queries[0], algorithm="dgpm", config=DgpmConfig().without_optimizations()
        )
        assert plain.relation == nopt.relation
        assert session.stats.cache_misses == 2  # different config -> different key

    def test_lru_eviction(self):
        cache = LruResultCache(max_entries=2)
        cache.put(("a",), "ra")
        cache.put(("b",), "rb")
        assert cache.get(("a",)) == "ra"  # refreshes 'a'
        cache.put(("c",), "rc")  # evicts 'b'
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) == "ra"
        assert cache.stats.evictions == 1

    def test_cache_disabled(self, web_instance):
        _, frag, queries = web_instance
        session = SimulationSession(frag, cache_size=0)
        session.run(queries[0], algorithm="dgpm")
        again = session.run(queries[0], algorithm="dgpm")
        assert "cache_hit" not in again.metrics.extras
        assert session.stats.cache_hits == 0


class TestInvalidation:
    def test_mutation_invalidates_and_stays_correct(self):
        graph = web_graph(300, 1200, n_labels=8, seed=9)
        frag = partition(graph, 3, seed=9)
        query = cyclic_pattern(graph, 3, 4, seed=1)
        session = SimulationSession(frag)
        before = session.run(query, algorithm="dgpm")
        assert before.relation == simulation(query, graph)

        # Mutate a resident fragment: drop a local edge from both the base
        # graph and the fragment copy (keeps the fragmentation consistent).
        target = None
        for f in frag:
            for u, v in f.graph.edges():
                if u in f.local_nodes and v in f.local_nodes:
                    target = (f, u, v)
                    break
            if target:
                break
        assert target is not None
        f, u, v = target
        f.graph.remove_edge(u, v)
        graph.remove_edge(u, v)

        after = session.run(query, algorithm="dgpm")
        assert session.stats.invalidations == 1
        assert "cache_hit" not in after.metrics.extras  # cache was cleared
        assert after.relation == simulation(query, graph)
        fresh = execute_dgpm(query, frag)
        assert after.relation == fresh.relation

    def test_inconsistent_mutation_fails_loudly(self):
        """A mutation that breaks the fragmentation invariants must raise,
        not be answered from stale boundary tables."""
        from repro.errors import FragmentationError

        graph = web_graph(200, 800, n_labels=6, seed=6)
        frag = partition(graph, 2, seed=6)
        query = cyclic_pattern(graph, 3, 4, seed=0)
        session = SimulationSession(frag)
        session.run(query, algorithm="dgpm")
        # Relabel a node in the base graph only: fragment copies go stale.
        victim = next(iter(frag[0].local_nodes))
        graph.add_node(victim, "mutated-label")
        with pytest.raises(FragmentationError):
            session.run(query, algorithm="dgpm")

    def test_explicit_invalidate_clears_cache(self):
        graph = web_graph(200, 800, n_labels=6, seed=4)
        frag = partition(graph, 2, seed=4)
        query = cyclic_pattern(graph, 3, 4, seed=0)
        session = SimulationSession(frag)
        session.run(query, algorithm="dgpm")
        session.invalidate()
        again = session.run(query, algorithm="dgpm")
        assert "cache_hit" not in again.metrics.extras
        assert session.stats.invalidations == 1


class TestSessionSurface:
    def test_unknown_algorithm_raises(self, web_instance):
        _, frag, queries = web_instance
        session = SimulationSession(frag)
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="unknown algorithm"):
            session.run(queries[0], algorithm="nonsense")

    def test_dgpmnopt_alias_disables_optimizations(self, web_instance):
        _, frag, queries = web_instance
        session = SimulationSession(frag)
        result = session.run(queries[0], algorithm="dgpmnopt")
        assert result.metrics.algorithm == "dGPMNOpt"
        plain = session.run(queries[0], algorithm="dgpm")
        assert plain.metrics.algorithm == "dGPM"
        assert plain.relation == result.relation
        assert session.stats.cache_misses == 2  # distinct cache keys

    def test_dgpmd_precondition_skips_deps_build(self, web_instance):
        _, frag, queries = web_instance  # cyclic graph, cyclic query
        from repro.errors import PatternError

        session = SimulationSession(frag)
        with pytest.raises(PatternError):
            session.run(queries[0], algorithm="dgpmd")
        assert session._deps is None  # precondition failed before deps built

    def test_warm_builds_structures(self, web_instance):
        _, frag, _ = web_instance
        session = SimulationSession(frag).warm()
        assert session.deps is session.deps  # cached, same object

    def test_label_interning(self, web_instance):
        _, frag, _ = web_instance
        session = SimulationSession(frag)
        alphabet = frag.graph.label_alphabet()
        assert len(session.labels) >= len(alphabet)
        first = session.labels.intern(next(iter(alphabet)))
        assert session.labels.intern(next(iter(alphabet))) == first

    def test_mp_driver_matches_simulator(self, web_instance):
        graph, frag, queries = web_instance
        session = SimulationSession(frag, config=DgpmConfig(enable_push=False))
        mp_result = session.run(queries[0], algorithm="dgpm-mp")
        sim_result = session.run(queries[0], algorithm="dgpm")
        assert mp_result.relation == sim_result.relation
        assert mp_result.metrics.n_messages == sim_result.metrics.n_messages
