"""Metamorphic suite: a mutating session must always equal the oracle.

Random streams of interleaved deletes / inserts / node additions / queries
are applied through :class:`SimulationSession`'s mutation API, and after
*every* step the session's answer is checked against a from-scratch
centralized ``simulation(query, G')`` on the current graph -- across three
partitioners and every algorithm the session serves (shape-restricted
algorithms get shape-preserving streams: deletions/re-insertions for dGPMd
on DAGs, leaf growth for dGPMt on trees).

Randomness comes from the ``rng``/``rng_seed`` fixtures (seed derived from
the test node id and printed on every run), so a failing stream replays
exactly from the report.
"""

from __future__ import annotations

import pytest

from repro import (
    SimulationSession,
    balanced_bfs_partition,
    citation_dag,
    hash_partition,
    random_partition,
    random_tree,
    simulation,
    tree_partition,
    web_graph,
)
from repro.bench.workloads import cyclic_pattern, dag_pattern, tree_pattern
from repro.graph.pattern import Pattern

PARTITIONERS = {
    "random": lambda g, seed: random_partition(g, 3, seed=seed),
    "bfs": lambda g, seed: balanced_bfs_partition(g, 3, seed=seed),
    "hash": lambda g, seed: hash_partition(g, 3, seed=seed),
}

#: general-graph algorithms (dGPMd/dGPMt need shape-preserving streams below)
GENERAL_ALGORITHMS = ["dgpm", "dgpmnopt", "dmes", "dishhk", "match"]


def _mutate_once(rng, session, graph, deleted):
    """One random update through the session API; returns what it did."""
    r = rng.random()
    if r < 0.45 and graph.n_edges:
        edges = list(graph.edges())
        u, v = edges[rng.randrange(len(edges))]
        session.delete_edge(u, v)
        deleted.append((u, v))
        return "delete"
    if r < 0.75 and deleted:
        u, v = deleted.pop(rng.randrange(len(deleted)))
        if not graph.has_edge(u, v):
            session.insert_edge(u, v)
            return "insert"
        return "noop"
    if r < 0.9:
        node = ("meta", session.stats.mutations)
        label = rng.choice(sorted(graph.label_alphabet(), key=repr))
        session.add_node(node, label)
        return "add_node"
    nodes = list(graph.nodes())
    u, v = rng.choice(nodes), rng.choice(nodes)
    if u != v and not graph.has_edge(u, v):
        session.insert_edge(u, v)
        return "insert"
    return "noop"


@pytest.mark.parametrize("partitioner", sorted(PARTITIONERS))
@pytest.mark.parametrize("algorithm", GENERAL_ALGORITHMS)
def test_interleaved_stream_matches_oracle(partitioner, algorithm, rng, rng_seed):
    seed = rng_seed % 1000  # per-case, from the printed fixture seed
    graph = web_graph(60, 260, n_labels=4, seed=seed)
    frag = PARTITIONERS[partitioner](graph, seed)
    session = SimulationSession(frag)
    queries = [
        cyclic_pattern(graph, 3, 4, seed=seed),
        Pattern({"a": "dom0", "b": "dom1"}, [("a", "b")]),
        Pattern({"p": "dom2"}),  # childless point query
    ]
    # Pre-serve so the stream starts with cached (and soon warm) entries.
    for q in queries:
        session.run(q, algorithm=algorithm)

    deleted = []
    for step in range(12):
        _mutate_once(rng, session, graph, deleted)
        frag.validate()
        q = queries[step % len(queries)]
        result = session.run(q, algorithm=algorithm)
        assert result.relation == simulation(q, graph), (
            partitioner, algorithm, step,
        )
    # Every query once more at the end, against the final graph.
    for q in queries:
        assert session.run(q, algorithm=algorithm).relation == simulation(q, graph)
    assert session.stats.invalidations == 0  # maintained, never dropped


def test_dgpmd_stream_on_dag(rng, rng_seed):
    """dGPMd serves a DAG under deletions and re-insertions (DAG-safe)."""
    seed = rng_seed % 1000
    graph = citation_dag(120, 420, seed=seed)
    frag = random_partition(graph, 3, seed=seed)
    session = SimulationSession(frag)
    queries = [dag_pattern(graph, diameter=2, n_nodes=4, n_edges=4, seed=s) for s in (0, 1)]
    for q in queries:
        session.run(q, algorithm="dgpmd")
    deleted = []
    for step in range(10):
        if step % 3 != 2 or not deleted:
            edges = list(graph.edges())
            u, v = edges[rng.randrange(len(edges))]
            session.delete_edge(u, v)
            deleted.append((u, v))
        else:
            u, v = deleted.pop()
            session.insert_edge(u, v)  # re-insertion cannot create a cycle
        frag.validate()
        q = queries[step % len(queries)]
        assert session.run(q, algorithm="dgpmd").relation == simulation(q, graph), step


def test_dgpmt_stream_on_growing_tree(rng, rng_seed):
    """dGPMt serves a tree that grows leaves (tree + connectivity preserved:
    each new node joins its parent's fragment)."""
    seed = rng_seed % 1000
    tree = random_tree(60, seed=seed)
    frag = tree_partition(tree, 3, seed=seed)
    session = SimulationSession(frag)
    queries = [tree_pattern(tree, n_nodes=3, seed=s) for s in (0, 1)]
    for q in queries:
        session.run(q, algorithm="dgpmt")
    labels = sorted(tree.label_alphabet(), key=repr)
    for step in range(8):
        parent = rng.choice(list(tree.nodes()))
        leaf = ("leaf", step)
        session.add_node(leaf, rng.choice(labels), fid=frag.owner(parent))
        session.insert_edge(parent, leaf)  # local edge: fragment stays connected
        frag.validate()
        assert frag.has_connected_fragments()
        q = queries[step % len(queries)]
        assert session.run(q, algorithm="dgpmt").relation == simulation(q, tree), step


def test_auto_dispatch_stream(rng, rng_seed):
    """The auto-dispatched session stays oracle-exact under mutations."""
    seed = rng_seed % 1000
    graph = web_graph(50, 220, n_labels=4, seed=seed)
    frag = random_partition(graph, 3, seed=seed)
    session = SimulationSession(frag)
    q = cyclic_pattern(graph, 3, 4, seed=seed)
    deleted = []
    for step in range(8):
        _mutate_once(rng, session, graph, deleted)
        frag.validate()
        assert session.run(q).relation == simulation(q, graph), step
