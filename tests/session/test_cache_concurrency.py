"""Cache-layer concurrency and canonical-key property tests.

Two halves of one satellite:

* Hypothesis properties of :func:`canonical_query_key` / :func:`canonical_form`:
  isomorphic relabelings/reorderings of a pattern hash identically, edge
  perturbations that break isomorphism never collide (verified against a
  brute-force isomorphism oracle, feasible at pattern sizes), and equal
  digests always come with a label/edge-preserving order correspondence.
* Concurrent hammering of :class:`LruResultCache` and :class:`LabelInterner`:
  parallel get/put/evict never loses an ``on_evict`` callback, never corrupts
  stats, and get-or-compute is single-flight.
"""

from __future__ import annotations

import itertools
import random
import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.pattern import Pattern
from repro.session.cache import (
    LabelInterner,
    LruResultCache,
    canonical_form,
    canonical_query_key,
)

LABELS = "AB"


# ----------------------------------------------------------------------
# canonical key properties
# ----------------------------------------------------------------------

@st.composite
def patterns(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    labels = draw(st.lists(st.sampled_from(LABELS), min_size=n, max_size=n))
    n_edges = draw(st.integers(min_value=0, max_value=2 * n))
    edges = {
        (draw(st.integers(0, n - 1)), draw(st.integers(0, n - 1)))
        for _ in range(n_edges)
    }
    return Pattern({f"n{i}": labels[i] for i in range(n)},
                   [(f"n{a}", f"n{b}") for a, b in edges])


def _renamed(query: Pattern, rng: random.Random) -> Pattern:
    """An isomorphic copy: nodes renamed, node/edge enumeration reshuffled."""
    nodes = list(query.nodes())
    fresh = [f"m{i}" for i in range(len(nodes))]
    rng.shuffle(fresh)
    rename = dict(zip(nodes, fresh))
    items = [(rename[u], query.label(u)) for u in nodes]
    rng.shuffle(items)
    edges = [(rename[a], rename[b]) for a, b in query.edges()]
    rng.shuffle(edges)
    return Pattern(dict(items), edges)


def _isomorphic(p: Pattern, q: Pattern) -> bool:
    """Brute-force label-preserving digraph isomorphism (|Vq| <= 5 here)."""
    if p.n_nodes != q.n_nodes or p.n_edges != q.n_edges:
        return False
    pn, qn = list(p.nodes()), list(q.nodes())
    p_edges = set(p.edges())
    q_edges = set(q.edges())
    for perm in itertools.permutations(qn):
        mapping = dict(zip(pn, perm))
        if all(p.label(u) == q.label(mapping[u]) for u in pn) and {
            (mapping[a], mapping[b]) for a, b in p_edges
        } == q_edges:
            return True
    return False


class TestCanonicalKeyProperties:
    @given(patterns(), st.integers(0, 2**32 - 1))
    @settings(max_examples=120, deadline=None)
    def test_isomorphic_relabelings_hash_identically(self, query, seed):
        other = _renamed(query, random.Random(seed))
        assert canonical_query_key(query) == canonical_query_key(other)

    @given(patterns(), st.integers(0, 2**32 - 1))
    @settings(max_examples=120, deadline=None)
    def test_edge_perturbations_do_not_collide(self, query, seed):
        """Flip one edge; unless the result is genuinely isomorphic (checked
        by brute force), the digests must differ."""
        rng = random.Random(seed)
        nodes = list(query.nodes())
        u, v = rng.choice(nodes), rng.choice(nodes)
        edges = set(query.edges())
        edges ^= {(u, v)}  # add or remove (u, v)
        perturbed = Pattern({w: query.label(w) for w in nodes}, sorted(edges))
        keys_equal = canonical_query_key(query) == canonical_query_key(perturbed)
        assert keys_equal == _isomorphic(query, perturbed)

    @given(patterns(), st.integers(0, 2**32 - 1))
    @settings(max_examples=80, deadline=None)
    def test_equal_digests_ship_a_valid_correspondence(self, query, seed):
        """The orders behind two equal digests really are an isomorphism --
        the property the session's hit-translation relies on."""
        other = _renamed(query, random.Random(seed))
        fq, fo = canonical_form(query), canonical_form(other)
        assert fq.digest == fo.digest and fq.exact and fo.exact
        mapping = dict(zip(fq.order, fo.order))
        assert all(query.label(u) == other.label(mapping[u]) for u in fq.order)
        assert {(mapping[a], mapping[b]) for a, b in query.edges()} == set(
            other.edges()
        )

    def test_interner_keeps_digests_stable(self):
        interner = LabelInterner()
        a = Pattern({"x": "A", "y": "B"}, [("x", "y")])
        b = Pattern({"p": "A", "q": "B"}, [("p", "q")])
        assert canonical_query_key(a, interner) == canonical_query_key(b, interner)

    def test_symmetry_budget_fallback_is_deterministic(self):
        """A pattern too symmetric for the budget still keys deterministically
        (same bytes in -> same digest), just without rename-invariance."""
        big = {f"s{i}": "A" for i in range(9)}
        q1 = Pattern(big)  # 9! permutations > budget, no edges to refine
        q2 = Pattern(dict(big))
        f1 = canonical_form(q1)
        assert not f1.exact
        assert f1.digest == canonical_form(q2).digest


# ----------------------------------------------------------------------
# concurrent hammering
# ----------------------------------------------------------------------

N_THREADS = 8
OPS_PER_THREAD = 300


class TestLruCacheHammer:
    def test_parallel_put_get_evict_preserves_callbacks_and_stats(self):
        """Unique keys from N threads: afterwards every key is accounted for
        exactly once (still cached xor evicted-with-callback), the callback
        never fired twice for a key, and the eviction counter matches."""
        evicted: list = []
        evict_lock = threading.Lock()

        def on_evict(key):
            with evict_lock:
                evicted.append(key)

        cache = LruResultCache(max_entries=32, on_evict=on_evict)
        inserted: set = set()
        inserted_lock = threading.Lock()
        corrupt: list = []
        barrier = threading.Barrier(N_THREADS)

        def worker(tid: int) -> None:
            rng = random.Random(tid)
            barrier.wait(timeout=60)
            for i in range(OPS_PER_THREAD):
                key = (tid, i)
                cache.put(key, key)  # value == key: corruption is detectable
                with inserted_lock:
                    inserted.add(key)
                probe = (rng.randrange(N_THREADS), rng.randrange(OPS_PER_THREAD))
                got = cache.get(probe)
                if got is not None and got != probe:
                    corrupt.append((probe, got))
                if rng.random() < 0.1:
                    cache.pop((rng.randrange(N_THREADS), rng.randrange(OPS_PER_THREAD)))

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
            assert not t.is_alive(), "cache hammer deadlocked"

        assert not corrupt, f"cross-key corruption: {corrupt[:3]}"
        assert len(cache) <= 32
        remaining = set(cache.keys())
        assert len(evicted) == len(set(evicted)), "on_evict fired twice for a key"
        assert remaining | set(evicted) == inserted, "a key vanished untracked"
        assert remaining.isdisjoint(set(evicted))
        # Overflow evictions (not pops) are the counted ones; every counted
        # eviction fired its callback.
        assert cache.stats.evictions <= len(evicted)
        assert cache.stats.hits + cache.stats.misses == N_THREADS * OPS_PER_THREAD

    def test_get_or_compute_is_single_flight(self):
        cache = LruResultCache(max_entries=8)
        calls: list = []
        gate = threading.Event()
        barrier = threading.Barrier(N_THREADS)

        started = threading.Event()

        def compute():
            calls.append(1)  # list.append is atomic
            started.set()
            gate.wait(timeout=60)  # hold everyone in the coalescing window
            return "value"

        outcomes: list = []

        def worker():
            barrier.wait(timeout=60)
            outcomes.append(cache.get_or_compute(("k",), compute))

        threads = [threading.Thread(target=worker) for _ in range(N_THREADS)]
        for t in threads:
            t.start()
        # Let the one computer enter, give waiters a beat to pile up, open up.
        assert started.wait(timeout=60)
        gate.set()
        for t in threads:
            t.join(timeout=120)
            assert not t.is_alive(), "get_or_compute deadlocked"
        assert len(calls) == 1, "compute ran more than once"
        assert all(value == "value" for value, _ in outcomes)
        assert sum(1 for _, was_hit in outcomes if not was_hit) == 1
        assert cache.stats.misses == 1
        assert cache.stats.hits == N_THREADS - 1

    def test_disabled_cache_computes_in_parallel(self):
        """max_entries=0 must not serialize identical queries: both computes
        run concurrently (the in-barrier proves overlap -- a serialized
        implementation would time the barrier out)."""
        cache = LruResultCache(max_entries=0)
        inside = threading.Barrier(2)
        results: list = []

        def compute():
            inside.wait(timeout=30)  # both threads must be in compute at once
            return "v"

        def worker():
            results.append(cache.get_or_compute(("k",), compute))

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
            assert not t.is_alive(), "disabled cache serialized the computes"
        assert [value for value, _ in results] == ["v", "v"]
        assert all(not was_hit for _, was_hit in results)

    def test_get_or_compute_failure_lets_next_caller_take_over(self):
        cache = LruResultCache(max_entries=8)
        attempts: list = []
        lock = threading.Lock()

        def compute():
            with lock:
                attempts.append(1)
                first = len(attempts) == 1
            if first:
                raise ValueError("flaky backend")
            return "value"

        errors: list = []
        values: list = []
        barrier = threading.Barrier(4)

        def worker():
            barrier.wait(timeout=60)
            try:
                values.append(cache.get_or_compute(("k",), compute)[0])
            except ValueError as exc:
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
            assert not t.is_alive()
        assert len(errors) == 1, "exactly the failing computer sees the error"
        assert values == ["value"] * 3
        assert cache.get(("k",)) == "value"


class TestLabelInternerHammer:
    def test_concurrent_interning_allocates_bijective_ids(self):
        interner = LabelInterner()
        labels = [f"label-{i}" for i in range(200)]
        seen: dict = {}
        seen_lock = threading.Lock()
        barrier = threading.Barrier(N_THREADS)

        def worker(tid: int) -> None:
            rng = random.Random(tid)
            order = labels[:]
            rng.shuffle(order)
            barrier.wait(timeout=60)
            for label in order:
                ident = interner.intern(label)
                with seen_lock:
                    prior = seen.setdefault(label, ident)
                assert prior == ident, "interner id changed across calls"

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
            assert not t.is_alive()
        ids = [seen[label] for label in labels]
        assert sorted(ids) == list(range(len(labels))), "ids not dense/bijective"
