"""``remove_node`` end to end, and the targeted insertion repair.

The removal contract: the fragmentation stays valid (``validate()`` holds),
dependency graphs are patched rather than rebuilt, and every maintained
answer -- cold cache entries, warm repaired entries, long-lived incremental
sessions -- equals a from-scratch simulation of the mutated graph.

The regression pinned by :class:`TestWarmRemoveNodeRegression`: a removed
node's own candidacy can be killed *during* the edge cascade, after the
node has already left its owner's local set -- so it no longer counts as a
local falsification and the repair used to report "nothing changed",
leaving a stale cached answer that still contained the removed node.
"""

from __future__ import annotations

import random

import pytest

from repro import (
    DgpmConfig,
    SimulationSession,
    partition,
    simulation,
    web_graph,
)
from repro.bench.workloads import cyclic_pattern
from repro.core.incremental import IncrementalDgpmSession
from repro.errors import GraphError
from repro.graph.digraph import DiGraph
from repro.graph.mutations import DeleteEdge, InsertEdge, RemoveNode
from repro.graph.pattern import Pattern


def _replay_remove(graph: DiGraph, removed) -> DiGraph:
    out = graph.copy()
    for node in removed:
        out.remove_node(node)
    return out


class TestSessionRemoveNode:
    @pytest.fixture()
    def served(self):
        graph = web_graph(200, 800, n_labels=5, seed=31)
        frag = partition(graph, 3, seed=31)
        session = SimulationSession(frag)
        queries = [cyclic_pattern(graph, 3, 4, seed=s) for s in range(3)]
        for _ in range(2):  # second pass promotes warm states
            for q in queries:
                session.run(q, algorithm="dgpm")
        return graph, frag, session, queries

    def test_removals_keep_fragmentation_valid(self, served):
        graph, frag, session, queries = served
        rng = random.Random(5)
        initial = graph.copy()
        removed = []
        for _ in range(12):
            node = rng.choice(list(graph.nodes()))
            outcome = session.remove_node(node)
            removed.append(node)
            assert outcome.kind == "remove_node"
            assert outcome.delta.cascade is not None
            frag.validate()
        oracle_graph = _replay_remove(initial, removed)
        for q in queries:
            assert session.run(q).relation == simulation(q, oracle_graph)

    def test_remove_unknown_node_is_graph_error(self, served):
        _graph, _frag, session, _queries = served
        with pytest.raises(GraphError):
            session.remove_node("no-such-node")

    def test_batch_mixing_removals_and_edges(self, served):
        graph, _frag, session, queries = served
        initial = graph.copy()
        u, v = next(iter(graph.edges()))
        victim = next(
            n for n in graph.nodes() if n not in (u, v)
        )
        outcomes = session.apply(
            [DeleteEdge(u, v), RemoveNode(victim)]
        )
        assert [o.kind for o in outcomes] == ["delete", "remove_node"]
        oracle_graph = initial.copy()
        oracle_graph.remove_edge(u, v)
        oracle_graph.remove_node(victim)
        for q in queries:
            assert session.run(q).relation == simulation(q, oracle_graph)

    def test_deps_patched_not_rebuilt_across_removal(self, served):
        graph, _frag, session, _queries = served
        deps_before = session.deps
        session.remove_node(next(iter(graph.nodes())))
        assert session.deps is deps_before


class TestWarmRemoveNodeRegression:
    def test_warm_entry_rewritten_when_cascade_kills_candidacy(self):
        # A 2-cycle query: every pattern node is parented, so a match dies
        # through counter surgery, not through the final label scrub.
        query = Pattern({"a": "A", "b": "B"}, [("a", "b"), ("b", "a")])
        graph = DiGraph(
            {1: "A", 2: "B", 3: "A", 4: "B", 5: "C", 6: "C"},
            [(1, 2), (2, 1), (3, 4), (4, 3), (5, 6)],
        )
        initial = graph.copy()  # the session mutates the served graph in place
        frag = partition(graph, 2, seed=3)
        session = SimulationSession(frag)
        for _ in range(2):
            session.run(query, algorithm="dgpm")
        before = session.run(query).relation.as_dict()
        assert 1 in before["a"]
        outcome = session.remove_node(1)
        assert outcome.kind == "remove_node"
        after = session.run(query).relation.as_dict()
        assert 1 not in after["a"]
        assert 2 not in after["b"]  # its partner dies with the cycle
        assert 3 in after["a"] and 4 in after["b"]  # the other pair survives
        oracle_graph = _replay_remove(initial, [1])
        assert session.run(query).relation == simulation(query, oracle_graph)

    def test_sole_casualty_is_the_removed_node(self):
        # The sharpest spelling of the regression: removing node 1 kills
        # *only* node 1's candidacy (its target keeps another predecessor,
        # so no other local variable is falsified) -- the repair must still
        # report a change purely from the node's pre-cascade candidacy.
        query = Pattern({"a": "A", "b": "B"}, [("a", "b")])
        graph = DiGraph(
            {1: "A", 2: "B", 3: "A", 4: "C"},
            [(1, 2), (3, 2), (4, 1)],
        )
        initial = graph.copy()
        frag = partition(graph, 2, seed=1)
        session = SimulationSession(frag)
        for _ in range(2):
            session.run(query, algorithm="dgpm")
        assert 1 in session.run(query).relation.as_dict()["a"]
        session.remove_node(1)
        after = session.run(query).relation.as_dict()
        assert after["a"] == {3}
        assert after["b"] == {2}
        assert session.run(query).relation == simulation(
            query, _replay_remove(initial, [1])
        )

    def test_incremental_session_same_scenario(self):
        query = Pattern({"a": "A", "b": "B"}, [("a", "b"), ("b", "a")])
        graph = DiGraph(
            {1: "A", 2: "B", 3: "A", 4: "B", 5: "C"},
            [(1, 2), (2, 1), (3, 4), (4, 3)],
        )
        frag = partition(graph, 2, seed=3)
        session = IncrementalDgpmSession(query, frag)
        update = session.remove_node(1)
        assert update.kind == "remove_node"
        oracle_graph = _replay_remove(graph, [1])
        assert session.relation() == simulation(query, oracle_graph)
        session.fragmentation.validate()


class TestIncrementalRemoveNode:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_removal_sequences(self, seed):
        rng = random.Random(seed)
        graph = web_graph(40, 150, n_labels=3, seed=seed)
        frag = partition(graph, 3, seed=seed)
        query = cyclic_pattern(graph, 3, 3, seed=seed)
        session = IncrementalDgpmSession(query, frag)
        mirror = graph.copy()
        for _ in range(6):
            node = rng.choice(list(mirror.nodes()))
            session.remove_node(node)
            mirror.remove_node(node)
            assert session.relation() == simulation(query, mirror)
            session.fragmentation.validate()

    def test_self_loop_node_removal(self):
        query = Pattern({"a": "A"}, [("a", "a")])
        graph = DiGraph({1: "A", 2: "A", 3: "B"}, [(1, 1), (1, 2), (3, 1)])
        frag = partition(graph, 2, seed=1)
        session = IncrementalDgpmSession(query, frag)
        assert session.relation().as_dict()["a"] == {1}
        session.remove_node(1)
        assert not session.relation().is_match
        session.fragmentation.validate()


class TestTargetedInsertRepair:
    def _chain_into_cluster(self):
        """A small tail chain feeding a big strongly-connected cluster: an
        insertion at the chain's head has a tiny reverse-reachable region."""
        nodes = {f"t{i}": "A" for i in range(3)}
        nodes.update({f"c{i}": "A" for i in range(30)})
        edges = [("t0", "t1"), ("t1", "t2")]
        edges += [(f"c{i}", f"c{(i + 1) % 30}") for i in range(30)]
        graph = DiGraph(nodes, edges)
        return graph

    def test_small_region_repairs_targeted(self):
        graph = self._chain_into_cluster()
        query = Pattern({"x": "A", "y": "A"}, [("x", "y")])
        frag = partition(graph, 2, seed=7)
        session = IncrementalDgpmSession(query, frag)
        # Reverse-reachable closure of t2 is {t0, t1, t2}: 3 of 33 nodes.
        update = session.insert_edge("t2", "c0")
        assert update.kind == "insert(targeted)"
        mirror = graph.copy()
        mirror.add_edge("t2", "c0")
        assert session.relation() == simulation(query, mirror)

    def test_huge_region_falls_back_to_recompute(self):
        graph = self._chain_into_cluster()
        query = Pattern({"x": "A", "y": "A"}, [("x", "y")])
        frag = partition(graph, 2, seed=7)
        session = IncrementalDgpmSession(query, frag)
        # Everything in the 30-cycle reaches c0: the region is most of the
        # graph, so the targeted re-seed would approach a full run anyway.
        update = session.insert_edge("c0", "t0")
        assert update.kind == "insert(recompute)"
        mirror = graph.copy()
        mirror.add_edge("c0", "t0")
        assert session.relation() == simulation(query, mirror)

    def test_irrelevant_insert_absorbed(self):
        graph = DiGraph(
            {1: "A", 2: "B", 3: "C", 4: "C"}, [(1, 2), (3, 4)]
        )
        query = Pattern({"x": "A", "y": "B"}, [("x", "y")])
        frag = partition(graph, 2, seed=1)
        session = IncrementalDgpmSession(query, frag)
        update = session.insert_edge(4, 3)
        assert update.kind == "insert(absorbed)"
        assert update.n_messages == 0
        mirror = graph.copy()
        mirror.add_edge(4, 3)
        assert session.relation() == simulation(query, mirror)

    def test_targeted_repair_then_removal_round_trip(self):
        """Insert-revive followed by remove_node lands back on the oracle."""
        graph = self._chain_into_cluster()
        query = Pattern({"x": "A", "y": "A"}, [("x", "y")])
        frag = partition(graph, 3, seed=9)
        session = IncrementalDgpmSession(query, frag)
        mirror = graph.copy()
        session.insert_edge("t2", "c5")
        mirror.add_edge("t2", "c5")
        session.remove_node("c5")
        mirror.remove_node("c5")
        assert session.relation() == simulation(query, mirror)
        session.fragmentation.validate()
