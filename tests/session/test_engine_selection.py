"""Engine selection and up-front argument validation on the session.

Covers the ``run(algorithm=, engine=)`` contract: bad names are rejected
before any protocol work, together, with the valid names spelled out; the
engine is part of the result-cache key; and the compiled-CSR cache is reused
across queries and recompiles exactly the fragments a mutation touched.
"""

import pytest

from repro.errors import ReproError
from repro.graph.digraph import DiGraph
from repro.graph.pattern import Pattern
from repro.partition.fragmentation import fragment_graph
from repro.session import SimulationSession


@pytest.fixture
def fragmentation():
    graph = DiGraph(
        {0: "A", 1: "B", 2: "A", 3: "C", 4: "B"},
        [(0, 1), (1, 2), (2, 3), (3, 0), (1, 4), (4, 2)],
    )
    return fragment_graph(graph, {0: 0, 1: 0, 2: 1, 3: 1, 4: 1})


@pytest.fixture
def query():
    return Pattern({"x": "A", "y": "B"}, [("x", "y")])


def test_unknown_algorithm_rejected_up_front(fragmentation, query):
    session = SimulationSession(fragmentation)
    with pytest.raises(ReproError, match="unknown algorithm 'nope'") as err:
        session.run(query, algorithm="nope")
    # the error lists the valid names, not just the rejection
    for name in ("auto", "dgpm", "dgpmnopt", "dgpmt", "dmes", "match"):
        assert name in str(err.value)
    assert session.stats.queries_served == 0  # rejected before any serving


def test_unknown_engine_rejected_up_front(fragmentation, query):
    session = SimulationSession(fragmentation)
    with pytest.raises(ReproError, match="unknown engine 'gpu'.*dict.*array"):
        session.run(query, engine="gpu")


def test_bad_algorithm_and_engine_reported_together(fragmentation, query):
    session = SimulationSession(fragmentation)
    with pytest.raises(ReproError) as err:
        session.run(query, algorithm="nope", engine="gpu")
    message = str(err.value)
    assert "unknown algorithm 'nope'" in message
    assert "unknown engine 'gpu'" in message


def test_constructor_rejects_unknown_default_engine(fragmentation):
    with pytest.raises(ReproError, match="unknown engine 'columnar'"):
        SimulationSession(fragmentation, engine="columnar")


def test_dict_only_drivers_reject_array_engine(fragmentation, query):
    pytest.importorskip("numpy")
    session = SimulationSession(fragmentation)
    with pytest.raises(ReproError, match="'dmes' does not support engine 'array'"):
        session.run(query, algorithm="dmes", engine="array")


def test_session_default_engine_and_per_query_override(fragmentation, query):
    pytest.importorskip("numpy")
    dict_answer = SimulationSession(fragmentation).run(query, algorithm="dgpm")
    session = SimulationSession(fragmentation, engine="array")
    assert session.run(query, algorithm="dgpm").relation == dict_answer.relation
    assert (
        session.run(query, algorithm="dgpm", engine="dict").relation
        == dict_answer.relation
    )


def test_engine_is_part_of_the_cache_key(fragmentation, query):
    pytest.importorskip("numpy")
    session = SimulationSession(fragmentation)
    session.run(query, algorithm="dgpm", engine="dict")
    session.run(query, algorithm="dgpm", engine="array")
    assert session.stats.cache_misses == 2  # array run was not a dict hit
    session.run(query, algorithm="dgpm", engine="array")
    assert session.stats.cache_hits == 1


def test_compiled_cache_reused_and_recompiled_per_touched_fragment(
    fragmentation, query
):
    pytest.importorskip("numpy")
    session = SimulationSession(fragmentation, cache_size=0, engine="array")
    session.run(query, algorithm="dgpm")
    compiled = session.compiled_fragments()
    base = compiled.compilations
    assert base == fragmentation.n_fragments
    session.run(query, algorithm="dgpm")
    assert compiled.compilations == base  # resident snapshots were reused

    old = {frag.fid: compiled.get(frag.fid) for frag in fragmentation}
    session.delete_edge(0, 1)  # intra-fragment edge of fragment 0
    assert session.compiled_fragments() is compiled  # maintained, not dropped
    stale = [
        fid for fid, entry in old.items()
        if not entry.is_fresh(session.fragmentation[fid])
    ]
    assert stale
    session.run(query, algorithm="dgpm")
    assert compiled.compilations == base + len(stale)
