"""The consistent-hash ring and the sharded serving backend.

Two layers, matching the two halves of ``session/sharding.py``:

* **Ring properties** (Hypothesis): assignment is a total, deterministic,
  balanced function of the (worker set, fragment set) pair alone; a join or
  leave moves at most ``ceil(|F|/n) + 1`` fragments (``n`` the new worker
  count) and every move involves the changed slot.
* **Serving parity**: ``backend="sharded"`` answers every registered driver
  exactly like a from-scratch simulation, including under a mutation feed
  checked per stamp against the replay oracle, and agrees with the other
  backends on ownership-independent answers.
"""

from __future__ import annotations

from repro import (
    ConcurrentSessionServer,
    citation_dag,
    hash_partition,
    random_partition,
    random_tree,
    simulation,
    tree_partition,
    web_graph,
)
from repro.bench.workloads import cyclic_pattern, dag_pattern, tree_pattern
from repro.errors import ReproError
from repro.session.session import SimulationSession
from repro.session.sharding import SHARDED_PLANS, HashRing

import pytest
from hypothesis import given, settings, strategies as st

from tests.session.test_concurrent_stress import _mutation_ops, _replay


# ----------------------------------------------------------------------
# ring properties
# ----------------------------------------------------------------------

def _ceil(a: int, b: int) -> int:
    return -(-a // b)


@st.composite
def ring_inputs(draw):
    """A worker-slot set (ints and/or strings) plus a fragment-id set."""
    n_workers = draw(st.integers(min_value=1, max_value=8))
    workers = draw(
        st.lists(
            st.one_of(
                st.integers(min_value=0, max_value=99),
                st.text("abcdef", min_size=1, max_size=4),
            ),
            min_size=n_workers,
            max_size=n_workers,
            unique=True,
        )
    )
    n_fragments = draw(st.integers(min_value=0, max_value=40))
    fragments = draw(
        st.lists(
            st.integers(min_value=0, max_value=500),
            min_size=n_fragments,
            max_size=n_fragments,
            unique=True,
        )
    )
    return workers, fragments


@settings(max_examples=100, deadline=None)
@given(ring_inputs())
def test_assignment_total_and_deterministic(inputs):
    workers, fragments = inputs
    ring = HashRing(workers, fragments)
    again = HashRing(list(reversed(workers)), list(reversed(fragments)))
    assert ring.assignment() == again.assignment()
    assert set(ring.assignment()) == set(fragments)
    assert set(ring.assignment().values()) <= set(workers)
    for fid in fragments:
        assert ring.owner_of(fid) == ring.assignment()[fid]


@settings(max_examples=100, deadline=None)
@given(ring_inputs())
def test_fresh_ring_is_balanced(inputs):
    workers, fragments = inputs
    ring = HashRing(workers, fragments)
    assert ring.capacity == _ceil(max(len(fragments), 0), len(workers))
    for slot, load in ring.loads().items():
        assert load <= ring.capacity
    assert sum(ring.loads().values()) == len(fragments)


@settings(max_examples=100, deadline=None)
@given(ring_inputs(), st.integers(min_value=100, max_value=199))
def test_join_moves_at_most_fair_share(inputs, joiner):
    workers, fragments = inputs
    ring = HashRing(workers, fragments)
    grown = ring.join(joiner)
    moved = ring.moved(grown)
    bound = _ceil(len(fragments), len(grown.workers)) + 1
    assert len(moved) <= bound
    # every move lands on the joiner, nothing shuffles between survivors
    assert all(after == joiner for _, after in moved.values())
    assert set(grown.assignment()) == set(fragments)


@settings(max_examples=100, deadline=None)
@given(ring_inputs())
def test_leave_moves_only_the_leavers_load(inputs):
    workers, fragments = inputs
    if len(workers) < 2:
        return  # leave() correctly refuses to empty the ring
    ring = HashRing(workers, fragments)
    leaver = sorted(workers, key=repr)[0]
    shrunk = ring.leave(leaver)
    moved = ring.moved(shrunk)
    assert set(moved) == set(ring.fragments_of(leaver))
    assert len(moved) <= _ceil(len(fragments), len(shrunk.workers)) + 1
    assert leaver not in shrunk.workers
    assert set(shrunk.assignment().values()) <= set(shrunk.workers)


def test_ring_rejects_bad_inputs():
    with pytest.raises(ValueError):
        HashRing([], [0, 1])
    with pytest.raises(ValueError):
        HashRing([0, 0], [1])
    ring = HashRing([0, 1], [0, 1, 2])
    with pytest.raises(ValueError):
        ring.join(1)
    with pytest.raises(ValueError):
        ring.leave(7)
    with pytest.raises(ValueError):
        HashRing([0], [1]).leave(0)


def test_ownership_agrees_across_partitioners_and_engines(rng_seed):
    """The ring is a function of fragment *ids* only: any stack producing
    the same fragment count agrees on ownership."""
    seed = rng_seed % 1000
    graph = web_graph(60, 200, seed=seed)
    stacks = [
        hash_partition(graph, 6, seed=seed),
        random_partition(graph, 6, seed=seed + 1),
    ]
    rings = [
        HashRing(range(3), tuple(f.fid for f in frag)) for frag in stacks
    ]
    assert rings[0].assignment() == rings[1].assignment()
    servers = [
        ConcurrentSessionServer(frag, backend="sharded", n_workers=3)
        for frag in stacks
    ]
    try:
        assert (
            servers[0].ring.assignment() == servers[1].ring.assignment()
        )
    finally:
        for server in servers:
            server.close()


# ----------------------------------------------------------------------
# sharded serving parity
# ----------------------------------------------------------------------

def test_sharded_serves_every_general_driver(rng_seed):
    seed = rng_seed % 1000
    graph = web_graph(120, 420, n_labels=4, seed=seed)
    frag = hash_partition(graph, 6, seed=seed)
    query = cyclic_pattern(graph, 3, 4, seed=seed)
    oracle = simulation(query, graph)
    with ConcurrentSessionServer(frag, backend="sharded", n_workers=3) as server:
        for algorithm in ("dgpm", "dgpmnopt", "dmes", "dishhk", "match", "auto"):
            result = server.run(query, algorithm=algorithm)
            assert result.relation == oracle, algorithm
            assert result.stamp == 0
        # distributed drivers report their sharded display names + ring width
        dist = server.run(query, algorithm="dgpm")
        assert dist.metrics.algorithm == "dGPM/sharded"
        assert dist.metrics.extras["sharded_workers"] == 3.0


def test_sharded_dgpmd_on_dag(rng_seed):
    seed = rng_seed % 1000
    graph = citation_dag(100, 320, seed=seed)
    frag = hash_partition(graph, 4, seed=seed)
    query = dag_pattern(graph, 3, seed=seed)
    with ConcurrentSessionServer(frag, backend="sharded", n_workers=2) as server:
        result = server.run(query, algorithm="dgpmd")
        assert result.relation == simulation(query, graph)
        assert result.metrics.algorithm == "dGPMd/sharded"


def test_sharded_dgpmt_on_tree(rng_seed):
    seed = rng_seed % 1000
    tree = random_tree(90, seed=seed)
    frag = tree_partition(tree, 4)
    query = tree_pattern(tree, seed=seed)
    with ConcurrentSessionServer(frag, backend="sharded", n_workers=2) as server:
        result = server.run(query, algorithm="dgpmt")
        assert result.relation == simulation(query, tree)
        assert result.metrics.algorithm == "dGPMt/sharded"


def test_sharded_rounds_match_the_inprocess_engine(rng_seed):
    """The coordinator mirrors SyncEngine's superstep count exactly."""
    seed = rng_seed % 1000
    graph = web_graph(90, 300, n_labels=4, seed=seed)
    frag = hash_partition(graph, 4, seed=seed)
    query = cyclic_pattern(graph, 3, 4, seed=seed)
    base = SimulationSession(hash_partition(graph, 4, seed=seed))
    with ConcurrentSessionServer(frag, backend="sharded", n_workers=3) as server:
        for algorithm in SHARDED_PLANS:
            if algorithm in ("dgpmd", "dgpmt"):
                continue  # shape-restricted; covered by dedicated tests
            sharded = server.run(query, algorithm=algorithm).metrics
            local = base.run(query, algorithm=algorithm).metrics
            assert sharded.n_rounds == local.n_rounds, algorithm


def test_sharded_mutation_feed_matches_replay_oracle(rng, rng_seed):
    """Every stamped answer equals the from-scratch oracle at its stamp --
    the linearizability contract under a serial mutation feed."""
    seed = rng_seed % 1000
    graph = web_graph(50, 190, n_labels=4, seed=seed)
    initial = graph.copy()
    frag = hash_partition(graph, 5, seed=seed)
    query = cyclic_pattern(graph, 3, 4, seed=seed)
    ops = _mutation_ops(graph, 12, rng)
    with ConcurrentSessionServer(frag, backend="sharded", n_workers=3) as server:
        for start in range(0, len(ops), 3):
            outcomes = server.apply(ops[start:start + 3])
            stamp = outcomes[-1].stamp
            result = server.run(query, algorithm="dgpm")
            assert result.stamp == stamp
            oracle = simulation(query, _replay(initial, ops, stamp))
            assert result.relation == oracle, f"stamp {stamp} (seed {seed})"
        assert server.stamp == len(ops)


def test_sharded_concurrent_readers_vs_writer(rng, rng_seed):
    """Threaded readers against a writer keep snapshot semantics on the
    sharded backend (reuses the stress harness's oracle check)."""
    from tests.session.test_concurrent_stress import _check_snapshots, _stress

    seed = rng_seed % 1000
    graph = web_graph(40, 160, n_labels=4, seed=seed)
    initial = graph.copy()
    frag = hash_partition(graph, 4, seed=seed)
    queries = [cyclic_pattern(graph, 3, 4, seed=seed)]
    ops = _mutation_ops(graph, 6, rng)
    with ConcurrentSessionServer(frag, backend="sharded", n_workers=2) as server:
        results = _stress(server, queries, ops, "dgpm", seed, n_readers=2,
                          reads_per_reader=4)
    _check_snapshots(initial, queries, ops, results)


# ----------------------------------------------------------------------
# argument validation
# ----------------------------------------------------------------------

def test_sharded_rejects_array_engine_sessions():
    graph = web_graph(30, 90, seed=0)
    frag = hash_partition(graph, 3)
    session = SimulationSession(frag, engine="array")
    with pytest.raises(ReproError, match="dict-engine"):
        ConcurrentSessionServer(session, backend="sharded")


def test_fault_plan_requires_sharded_backend():
    from repro.runtime.transport import FaultPlan

    graph = web_graph(30, 90, seed=0)
    frag = hash_partition(graph, 3)
    with pytest.raises(ReproError, match="sharded"):
        ConcurrentSessionServer(
            frag, backend="thread", fault_plan=FaultPlan(kills={0: 1})
        )


def test_shard_stats_and_repr(rng_seed):
    graph = web_graph(40, 120, seed=rng_seed % 1000)
    frag = hash_partition(graph, 4)
    with ConcurrentSessionServer(frag, backend="sharded", n_workers=2) as server:
        stats = server.shard_stats()
        assert len(stats) == 2
        assert sorted(fid for s in stats for fid in s["fids"]) == [0, 1, 2, 3]
        assert all(s["peak_rss_kb"] > 0 for s in stats)
        assert "sharded" in repr(server)
    with pytest.raises(ReproError):
        ConcurrentSessionServer(frag, backend="thread").shard_stats()
