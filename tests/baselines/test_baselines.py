"""Tests for the Match / disHHK / dMes baselines."""

import pytest

from repro.baselines import run_dishhk, run_dmes, run_match
from repro.core import run_dgpm
from repro.graph.examples import figure1
from repro.graph.generators import random_labeled_graph, web_graph
from repro.graph.pattern import Pattern
from repro.partition import balanced_bfs_partition, random_partition
from repro.simulation import simulation
from tests.conftest import random_instance


class TestCorrectness:
    @pytest.mark.parametrize("runner", [run_match, run_dishhk, run_dmes])
    def test_figure1(self, runner):
        q, g, frag = figure1()
        assert runner(q, frag).relation == simulation(q, g)

    @pytest.mark.parametrize("seed", range(20))
    @pytest.mark.parametrize("runner", [run_match, run_dishhk, run_dmes])
    def test_random_instances(self, runner, seed):
        graph, pattern = random_instance(seed, max_nodes=18)
        if graph.n_nodes < 3:
            return
        frag = random_partition(graph, 3, seed=seed)
        assert runner(pattern, frag).relation == simulation(pattern, graph)


class TestMatchBaseline:
    def test_ships_whole_graph(self):
        graph = random_labeled_graph(200, 800, seed=1)
        frag = random_partition(graph, 4, seed=1)
        q = Pattern({"a": "L0"})
        result = run_match(q, frag)
        # every node and edge serialized at least once
        floor = graph.n_nodes * 8 + graph.n_edges * 16
        assert result.metrics.ds_bytes >= floor

    def test_ds_independent_of_query(self):
        graph = random_labeled_graph(100, 400, seed=2)
        frag = random_partition(graph, 4, seed=2)
        small = run_match(Pattern({"a": "L0"}), frag)
        big = run_match(
            Pattern({i: f"L{i}" for i in range(5)}, [(0, 1), (1, 2), (2, 3), (3, 4)]),
            frag,
        )
        assert small.metrics.ds_bytes == big.metrics.ds_bytes

    def test_single_round(self):
        q, _, frag = figure1()
        assert run_match(q, frag).metrics.n_rounds == 1


class TestDisHHK:
    def test_ships_label_relevant_subgraph(self):
        graph = random_labeled_graph(300, 1200, n_labels=10, seed=3)
        frag = random_partition(graph, 4, seed=3)
        narrow = run_dishhk(Pattern({"a": "L0", "b": "L1"}, [("a", "b")]), frag)
        wide_labels = {i: f"L{i}" for i in range(10)}
        wide = run_dishhk(
            Pattern(wide_labels, [(i, (i + 1) % 10) for i in range(10)]), frag
        )
        # more query labels -> more of G shipped
        assert wide.metrics.ds_bytes > narrow.metrics.ds_bytes

    def test_ds_grows_with_graph(self):
        q = Pattern({"a": "L0", "b": "L1"}, [("a", "b")])
        small_g = random_labeled_graph(100, 400, seed=4)
        big_g = random_labeled_graph(800, 3200, seed=4)
        small = run_dishhk(q, random_partition(small_g, 4, seed=4))
        big = run_dishhk(q, random_partition(big_g, 4, seed=4))
        assert big.metrics.ds_bytes > 4 * small.metrics.ds_bytes

    def test_two_rounds(self):
        q, _, frag = figure1()
        assert run_dishhk(q, frag).metrics.n_rounds == 2


class TestDMes:
    def test_supersteps_recorded(self):
        q, _, frag = figure1()
        result = run_dmes(q, frag)
        assert result.metrics.extras["supersteps"] >= 2

    def test_redundant_traffic_exceeds_dgpm(self):
        graph = web_graph(800, 4000, seed=5)
        frag = balanced_bfs_partition(graph, 4, seed=5)
        from repro.bench.workloads import cyclic_pattern

        q = cyclic_pattern(graph, 4, 6, seed=1)
        dmes = run_dmes(q, frag)
        dgpm = run_dgpm(q, frag)
        assert dmes.relation == dgpm.relation
        # requests are re-sent every superstep: strictly more traffic
        assert dmes.metrics.ds_bytes > dgpm.metrics.ds_bytes

    def test_terminates_without_virtual_nodes(self):
        # all nodes in one fragment, second fragment isolated
        from repro.graph.digraph import DiGraph
        from repro.partition.fragmentation import fragment_graph

        g = DiGraph({1: "A", 2: "B", 3: "C"}, [(1, 2)])
        frag = fragment_graph(g, {1: 0, 2: 0, 3: 1})
        q = Pattern({"a": "A", "b": "B"}, [("a", "b")])
        result = run_dmes(q, frag)
        assert result.relation == simulation(q, g)
