"""Property-based tests for the Boolean layer.

The load-bearing invariant of the whole dGPM machinery: symbolic reduction
(:meth:`EquationSystem.reduce`) computes exactly the greatest fixpoint as a
function of the external parameters, for *every* monotone system.
"""

from itertools import product

from hypothesis import given, settings, strategies as st

from repro.boolean.expr import FALSE, TRUE, BoolExpr, Var, conj, disj
from repro.boolean.system import EquationSystem

INTERNAL = [f"x{i}" for i in range(4)]
EXTERNAL = [f"p{i}" for i in range(3)]


def leaf_strategy():
    names = INTERNAL + EXTERNAL
    return st.one_of(
        st.sampled_from([TRUE, FALSE]),
        st.sampled_from(names).map(Var),
    )


def expr_strategy(depth: int = 2):
    if depth == 0:
        return leaf_strategy()
    sub = expr_strategy(depth - 1)
    return st.one_of(
        leaf_strategy(),
        st.lists(sub, min_size=2, max_size=3).map(conj),
        st.lists(sub, min_size=2, max_size=3).map(disj),
    )


@st.composite
def systems(draw) -> EquationSystem:
    n = draw(st.integers(min_value=1, max_value=4))
    return EquationSystem({INTERNAL[i]: draw(expr_strategy()) for i in range(n)})


@settings(max_examples=150, deadline=None)
@given(systems())
def test_reduce_equals_solve_for_all_valuations(system):
    reduced = system.reduce()
    externals = sorted(system.external_parameters())
    for values in product([False, True], repeat=len(externals)):
        env = dict(zip(externals, values))
        solved = system.solve(env)
        for name in system.variables():
            assert reduced[name].evaluate(env) == solved[name]


@settings(max_examples=150, deadline=None)
@given(expr_strategy(), st.dictionaries(st.sampled_from(INTERNAL + EXTERNAL), st.booleans()))
def test_substitution_consistent_with_evaluation(expr, partial):
    """Substituting constants then evaluating == evaluating directly."""
    remaining = expr.variables() - set(partial)
    full_env = dict(partial)
    for name in remaining:
        full_env[name] = True
    substituted = expr.evaluate_partial(partial)
    env_rest = {name: True for name in substituted.variables()}
    assert substituted.evaluate(env_rest) == expr.evaluate(full_env)


@settings(max_examples=150, deadline=None)
@given(expr_strategy())
def test_monotonicity(expr):
    """Flipping any input false -> true never flips the output true -> false."""
    names = sorted(expr.variables())
    if not names:
        return
    for values in product([False, True], repeat=len(names)):
        env = dict(zip(names, values))
        before = expr.evaluate(env)
        for name in names:
            if not env[name]:
                grown = dict(env)
                grown[name] = True
                assert expr.evaluate(grown) >= before


@settings(max_examples=100, deadline=None)
@given(expr_strategy())
def test_normalization_preserves_semantics(expr):
    """conj/disj rebuilding an expression keeps its truth table."""
    rebuilt = conj([expr])
    names = sorted(expr.variables())
    for values in product([False, True], repeat=min(len(names), 6)):
        env = dict(zip(names, values))
        for name in names[6:]:
            env[name] = False
        assert rebuilt.evaluate(env) == expr.evaluate(env)


@settings(max_examples=100, deadline=None)
@given(systems())
def test_gfp_is_a_fixpoint(system):
    """solve() returns a genuine fixpoint of the equations."""
    externals = {name: True for name in system.external_parameters()}
    solved = system.solve(externals)
    env = {**externals, **solved}
    for name in system.variables():
        assert system.equation(name).evaluate(env) == solved[name]
