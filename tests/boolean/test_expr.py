"""Unit tests for the monotone Boolean expression algebra."""

import pickle

import pytest

from repro.boolean.expr import FALSE, TRUE, And, Const, Or, Var, conj, disj


class TestConstants:
    def test_singletons_behave_like_values(self):
        assert TRUE.evaluate({}) is True
        assert FALSE.evaluate({}) is False
        assert TRUE == Const(True)
        assert FALSE != TRUE

    def test_immutability(self):
        with pytest.raises(AttributeError):
            TRUE.value = False
        with pytest.raises(AttributeError):
            Var("x").name = "y"

    def test_no_variables(self):
        assert TRUE.variables() == frozenset()

    def test_is_const(self):
        assert TRUE.is_const()
        assert not Var("x").is_const()


class TestVar:
    def test_evaluate(self):
        assert Var("x").evaluate({"x": True}) is True
        with pytest.raises(KeyError):
            Var("x").evaluate({})

    def test_substitute(self):
        assert Var("x").substitute({"x": TRUE}) == TRUE
        assert Var("x").substitute({"y": TRUE}) == Var("x")

    def test_equality_and_hash(self):
        assert Var("x") == Var("x")
        assert hash(Var("x")) == hash(Var("x"))
        assert Var("x") != Var("y")
        assert Var("x") != Const(True)


class TestNormalization:
    def test_conj_flattens(self):
        e = conj([Var("a"), conj([Var("b"), Var("c")])])
        assert isinstance(e, And)
        assert e.variables() == frozenset({"a", "b", "c"})
        assert all(isinstance(op, Var) for op in e.operands)

    def test_disj_flattens(self):
        e = disj([Var("a"), disj([Var("b"), Var("c")])])
        assert isinstance(e, Or)
        assert len(e.operands) == 3

    def test_constant_folding(self):
        assert conj([Var("a"), FALSE]) == FALSE
        assert conj([Var("a"), TRUE]) == Var("a")
        assert disj([Var("a"), TRUE]) == TRUE
        assert disj([Var("a"), FALSE]) == Var("a")

    def test_units(self):
        assert conj([]) == TRUE
        assert disj([]) == FALSE

    def test_dedup(self):
        assert conj([Var("a"), Var("a")]) == Var("a")
        e = disj([Var("a"), Var("b"), Var("a")])
        assert isinstance(e, Or)
        assert len(e.operands) == 2

    def test_singleton_collapse(self):
        assert conj([Var("a")]) == Var("a")

    def test_operator_sugar(self):
        e = (Var("a") & Var("b")) | Var("c")
        assert e.evaluate({"a": True, "b": True, "c": False})
        assert not e.evaluate({"a": True, "b": False, "c": False})

    def test_equality_order_insensitive(self):
        assert conj([Var("a"), Var("b")]) == conj([Var("b"), Var("a")])
        assert disj([Var("a"), Var("b")]) == disj([Var("b"), Var("a")])

    def test_and_or_not_equal(self):
        assert conj([Var("a"), Var("b")]) != disj([Var("a"), Var("b")])


class TestOperations:
    def test_n_terms(self):
        e = conj([Var("a"), disj([Var("b"), Var("c")])])
        assert e.n_terms == 3
        assert TRUE.n_terms == 1

    def test_substitute_simplifies(self):
        e = conj([Var("a"), Var("b")])
        assert e.substitute({"a": TRUE}) == Var("b")
        assert e.substitute({"a": FALSE}) == FALSE

    def test_evaluate_partial(self):
        e = conj([Var("a"), Var("b")])
        assert e.evaluate_partial({"a": True}) == Var("b")
        assert e.evaluate_partial({"a": False}) == FALSE

    def test_nested_evaluate(self):
        e = disj([conj([Var("a"), Var("b")]), Var("c")])
        assert e.evaluate({"a": False, "b": True, "c": True})
        assert not e.evaluate({"a": False, "b": True, "c": False})

    def test_pickle_round_trip(self):
        e = disj([conj([Var(("u", "v")), Var(("u2", "v2"))]), TRUE, Var("w")])
        assert pickle.loads(pickle.dumps(e)) == e

    def test_repr_smoke(self):
        e = conj([Var("a"), disj([Var("b"), Var("c")])])
        text = repr(e)
        assert "AND" in text and "OR" in text
