"""Unit tests for Boolean equation systems and gfp solving."""

import pytest

from repro.boolean.expr import FALSE, TRUE, Var, conj, disj
from repro.boolean.system import (
    EquationBlowupError,
    EquationSystem,
    falsified_variables,
)
from repro.errors import ReproError


class TestSolve:
    def test_cycle_defaults_true(self):
        # gfp semantics: mutually supporting variables are true (the
        # recommendation cycle of Figure 1).
        system = EquationSystem({"x": Var("y"), "y": Var("x")})
        assert system.solve() == {"x": True, "y": True}

    def test_external_falsity_breaks_cycle(self):
        system = EquationSystem({"x": Var("y") & Var("p"), "y": Var("x")})
        assert system.solve({"p": False}) == {"x": False, "y": False}
        assert system.solve({"p": True}) == {"x": True, "y": True}

    def test_unbound_external_raises(self):
        system = EquationSystem({"x": Var("p")})
        with pytest.raises(ReproError):
            system.solve()

    def test_constants(self):
        system = EquationSystem({"x": TRUE, "y": FALSE, "z": Var("x") & Var("y")})
        assert system.solve() == {"x": True, "y": False, "z": False}

    def test_disjunction_survives_one_false(self):
        system = EquationSystem({"x": Var("p") | Var("q")})
        assert system.solve({"p": False, "q": True})["x"] is True


class TestSolveAcyclic:
    def test_linear_chain(self):
        system = EquationSystem({"a": Var("b"), "b": Var("c"), "c": TRUE})
        assert system.solve_acyclic() == {"a": True, "b": True, "c": True}

    def test_cycle_raises(self):
        system = EquationSystem({"x": Var("y"), "y": Var("x")})
        with pytest.raises(ReproError):
            system.solve_acyclic()

    def test_agrees_with_general_solver_on_dags(self):
        system = EquationSystem(
            {
                "a": Var("b") & Var("c"),
                "b": Var("c") | Var("p"),
                "c": Var("p"),
            }
        )
        for p in (True, False):
            assert system.solve_acyclic({"p": p}) == system.solve({"p": p})

    def test_deep_chain_no_recursion_error(self):
        eqs = {f"x{i}": Var(f"x{i+1}") for i in range(3000)}
        eqs["x3000"] = TRUE
        system = EquationSystem(eqs)
        assert system.solve_acyclic()["x0"] is True


class TestReduce:
    def test_projects_onto_externals(self):
        system = EquationSystem({"x": Var("y") & Var("p"), "y": Var("x")})
        reduced = system.reduce()
        for p in (True, False):
            assert reduced["x"].evaluate({"p": p}) == p
            assert reduced["y"].evaluate({"p": p}) == p

    def test_keep_subset(self):
        system = EquationSystem({"x": Var("p"), "y": Var("x")})
        reduced = system.reduce(keep=["y"])
        assert set(reduced) == {"y"}
        assert reduced["y"] == Var("p")

    def test_reduce_unknown_variable_raises(self):
        system = EquationSystem({"x": TRUE})
        with pytest.raises(ReproError):
            system.reduce(keep=["nope"])

    def test_blowup_guard(self):
        # a ladder of alternating AND/OR doubles terms per level
        eqs = {}
        for i in range(12):
            eqs[f"x{i}"] = conj([Var(f"x{i+1}"), Var(f"p{i}")]) | Var(f"q{i}")
        eqs["x12"] = Var("p_last")
        system = EquationSystem(eqs)
        with pytest.raises(EquationBlowupError):
            system.reduce(max_terms=8)

    def test_reduced_system_wrapper(self):
        system = EquationSystem({"x": Var("p")})
        assert system.reduced_system().equation("x") == Var("p")


class TestIntrospection:
    def test_external_parameters(self):
        system = EquationSystem({"x": Var("y") & Var("p"), "y": Var("q")})
        assert system.external_parameters() == {"p", "q"}

    def test_len_contains(self):
        system = EquationSystem({"x": TRUE})
        assert len(system) == 1
        assert "x" in system
        assert "y" not in system

    def test_falsified_variables(self):
        before = {"a": True, "b": True, "c": False}
        after = {"a": False, "b": True, "c": False}
        assert falsified_variables(before, after) == {"a"}
