"""Schedule independence: dGPM's fixpoint under adversarial asynchrony.

The paper's dGPM is asynchronous ("all sites conduct these in parallel and
asynchronously", Section 4.1); its correctness argument is that the
falsification fixpoint does not depend on message timing.  These tests make
that argument executable: the network releases only a random fraction of
queued messages per round, and the answer must match the synchronous run
and the centralized oracle for every schedule.
"""

import pytest

from repro.core import DgpmConfig, run_dgpm
from repro.graph.examples import example8_graph, figure1, figure1_fragmentation, figure2
from repro.partition import random_partition
from repro.runtime.network import Network
from repro.runtime.costmodel import CostModel
from repro.runtime.messages import Message, MessageKind
from repro.simulation import simulation
from tests.conftest import random_instance


class TestScrambledNetwork:
    def test_holds_back_messages(self):
        net = Network(CostModel(), scramble=(1, 0.5))
        for i in range(20):
            net.send(Message(0, 1, MessageKind.VAR_UPDATE, i, 10))
        delivered = sum(len(v) for v in net.deliver().values())
        assert 0 < delivered < 20
        assert net.has_pending

    def test_everything_eventually_delivered(self):
        net = Network(CostModel(), scramble=(2, 0.3))
        for i in range(30):
            net.send(Message(0, 1, MessageKind.VAR_UPDATE, i, 10))
        got = []
        while net.has_pending:
            for msgs in net.deliver().values():
                got.extend(m.payload for m in msgs)
        assert sorted(got) == list(range(30))

    def test_accounting_unaffected_by_holding(self):
        net = Network(CostModel(), scramble=(3, 0.5))
        for i in range(10):
            net.send(Message(0, 1, MessageKind.VAR_UPDATE, i, 10))
        assert net.data_bytes == 100  # counted at send time

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            Network(CostModel(), scramble=(1, 0.0))
        with pytest.raises(ValueError):
            Network(CostModel(), scramble=(1, 1.5))


class TestScheduleIndependence:
    @pytest.mark.parametrize("seed", range(8))
    def test_example8_cascade_any_schedule(self, seed):
        q, _, _ = figure1()
        g = example8_graph()
        frag = figure1_fragmentation(g)
        oracle = simulation(q, g)
        config = DgpmConfig(scramble=(seed, 0.4))
        assert run_dgpm(q, frag, config).relation == oracle

    @pytest.mark.parametrize("seed", range(8))
    def test_open_chain_any_schedule(self, seed):
        q, g, frag = figure2(12, close_cycle=False)
        oracle = simulation(q, g)
        config = DgpmConfig(scramble=(seed, 0.3))
        result = run_dgpm(q, frag, config)
        assert result.relation == oracle

    @pytest.mark.parametrize("seed", range(20))
    def test_random_instances_random_schedules(self, seed):
        graph, pattern = random_instance(seed)
        if graph.n_nodes < 3:
            return
        frag = random_partition(graph, 3, seed=seed)
        oracle = simulation(pattern, graph)
        for schedule_seed in (0, 1):
            config = DgpmConfig(scramble=(schedule_seed, 0.4))
            assert run_dgpm(pattern, frag, config).relation == oracle

    @pytest.mark.parametrize("seed", range(6))
    def test_push_safe_under_scrambling(self, seed):
        # the push rewire race is exactly what scrambling provokes
        q, g, frag = figure2(16, close_cycle=False)
        oracle = simulation(q, g)
        config = DgpmConfig(enable_push=True, push_threshold=0.0, scramble=(seed, 0.3))
        assert run_dgpm(q, frag, config).relation == oracle

    def test_ds_identical_across_schedules_without_push(self):
        # falsification-only shipping is deterministic: every schedule
        # ships the same set of (variable, watcher) messages
        q, _, _ = figure1()
        g = example8_graph()
        frag = figure1_fragmentation(g)
        counts = set()
        for seed in range(5):
            config = DgpmConfig(enable_push=False, scramble=(seed, 0.4))
            counts.add(run_dgpm(q, frag, config).metrics.n_messages)
        sync_count = run_dgpm(q, frag, DgpmConfig(enable_push=False)).metrics.n_messages
        assert counts == {sync_count}
