"""Tests for algorithm dGPMd (Theorem 3, DAG rank scheduling)."""

import pytest

from repro.core import DgpmConfig, run_dgpm, run_dgpmd
from repro.errors import PatternError
from repro.graph.digraph import DiGraph
from repro.graph.examples import figure5
from repro.graph.generators import citation_dag
from repro.graph.pattern import Pattern
from repro.partition import random_partition
from repro.bench.workloads import dag_pattern
from repro.simulation import simulation
from tests.conftest import random_instance


class TestCorrectness:
    def test_figure5_no_match(self):
        q, g, frag = figure5()
        result = run_dgpmd(q, frag)
        assert not result.is_match
        assert result.relation == simulation(q, g)

    @pytest.mark.parametrize("seed", range(30))
    def test_random_dag_queries_match_oracle(self, seed):
        graph, pattern = random_instance(seed)
        if not pattern.is_dag() or graph.n_nodes < 3:
            return
        frag = random_partition(graph, 3, seed=seed)
        result = run_dgpmd(pattern, frag)
        assert result.relation == simulation(pattern, graph)

    def test_agrees_with_dgpm_on_citation_workload(self):
        graph = citation_dag(400, 900, seed=1)
        frag = random_partition(graph, 4, seed=1)
        for d in (2, 3, 4):
            q = dag_pattern(graph, d, 6, 8, seed=d)
            a = run_dgpmd(q, frag)
            b = run_dgpm(q, frag)
            assert a.relation == b.relation == simulation(q, graph)

    def test_cyclic_query_on_dag_graph_short_circuits(self):
        graph = citation_dag(100, 250, seed=2)
        frag = random_partition(graph, 3, seed=2)
        q = Pattern({"a": "venue0", "b": "venue1"}, [("a", "b"), ("b", "a")])
        result = run_dgpmd(q, frag)
        assert not result.is_match
        assert result.metrics.n_messages == 0
        assert result.metrics.extras.get("short_circuit") == 1.0

    def test_cyclic_query_on_cyclic_graph_rejected(self):
        g = DiGraph({1: "A", 2: "B"}, [(1, 2), (2, 1)])
        frag = random_partition(g, 2, seed=0)
        q = Pattern({"a": "A", "b": "B"}, [("a", "b"), ("b", "a")])
        with pytest.raises(PatternError):
            run_dgpmd(q, frag)


class TestScheduling:
    def test_figure5_message_count_is_paper_exact(self):
        q, _, frag = figure5()
        result = run_dgpmd(q, frag)
        assert result.metrics.n_messages == 6  # Example 10

    def test_dgpm_ships_more_messages_on_figure5(self):
        q, _, frag = figure5()
        unbatched = run_dgpm(q, frag, DgpmConfig(enable_push=False))
        batched = run_dgpmd(q, frag)
        assert unbatched.metrics.n_messages == 12  # Example 9
        assert batched.metrics.n_messages < unbatched.metrics.n_messages

    def test_rounds_bounded_by_rank_height(self):
        graph = citation_dag(500, 1200, seed=3)
        frag = random_partition(graph, 5, seed=3)
        for d in (2, 4, 6):
            q = dag_pattern(graph, d, 7, 9, seed=d)
            result = run_dgpmd(q, frag)
            height = max(q.topological_ranks().values())
            # height+1 evaluation rounds, +1 for the trailing empty round
            assert result.metrics.n_rounds <= height + 2

    def test_messages_batched_per_site_pair_per_rank(self):
        graph = citation_dag(500, 1200, seed=4)
        frag = random_partition(graph, 4, seed=4)
        q = dag_pattern(graph, 3, 6, 8, seed=1)
        result = run_dgpmd(q, frag)
        height = max(q.topological_ranks().values())
        n = frag.n_fragments
        assert result.metrics.n_messages <= (height + 1) * n * (n - 1)


class TestDataShipment:
    def test_ds_within_theorem3_budget(self):
        graph = citation_dag(400, 1000, seed=5)
        frag = random_partition(graph, 4, seed=5)
        q = dag_pattern(graph, 4, 9, 13, seed=2)
        result = run_dgpmd(q, frag)
        # O(|Ef| |Vq|) variable entries; compare against entry budget
        entries = frag.n_crossing_edges * q.n_nodes
        assert result.metrics.ds_bytes <= entries * 12 + result.metrics.n_messages * 24
