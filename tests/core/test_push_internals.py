"""Unit tests for the push operation's internals (Section 4.2)."""

import pytest

from repro.boolean.expr import FALSE, Var, conj, disj
from repro.core.config import DgpmConfig
from repro.core.depgraph import DependencyGraphs
from repro.core.dgpm import DgpmSiteProgram, _PushState, run_dgpm
from repro.graph.digraph import DiGraph
from repro.graph.examples import figure1, figure2
from repro.graph.pattern import Pattern
from repro.partition.fragmentation import fragment_graph
from repro.runtime.messages import MessageKind
from repro.simulation import simulation


class TestPushState:
    def test_pending_equation_waits(self):
        ps = _PushState()
        assert ps.add(("u", "v"), Var(("a", "x")) | Var(("b", "y"))) is None
        assert ps.on_leaf_false(("a", "x")) == []  # OR survives one leaf
        assert ps.on_leaf_false(("b", "y")) == [("u", "v")]

    def test_conjunction_falsifies_on_first_leaf(self):
        ps = _PushState()
        ps.add(("u", "v"), Var(("a", "x")) & Var(("b", "y")))
        assert ps.on_leaf_false(("a", "x")) == [("u", "v")]

    def test_known_false_applied_at_registration(self):
        ps = _PushState()
        ps.on_leaf_false(("a", "x"))
        # a conjunction over an already-false leaf is dead on arrival
        assert ps.add(("u", "v"), Var(("a", "x")) & Var(("b", "y"))) == ("u", "v")

    def test_leaf_false_is_idempotent(self):
        ps = _PushState()
        ps.add(("u", "v"), Var(("a", "x")))
        assert ps.on_leaf_false(("a", "x")) == [("u", "v")]
        assert ps.on_leaf_false(("a", "x")) == []

    def test_unrelated_leaf_ignored(self):
        ps = _PushState()
        ps.add(("u", "v"), Var(("a", "x")))
        assert ps.on_leaf_false(("z", "z")) == []


class TestBenefitFunction:
    def _program(self, theta=0.2):
        q, _, frag = figure1()
        deps = DependencyGraphs(frag)
        return DgpmSiteProgram(0, frag, q, deps, DgpmConfig(push_threshold=theta))

    def test_benefit_zero_when_nothing_unresolved(self):
        program = self._program()
        program.state.run_initial()
        equations = {("YF", "yf1"): FALSE.substitute({})}
        # all-constant equations -> no unresolved in-nodes -> benefit 0
        assert program._benefit({("YF", "yf1"): FALSE}) == 0.0

    def test_benefit_matches_paper_formula(self):
        program = self._program()
        program.state.run_initial()
        equations = program.state.in_node_equations()
        pending = {k: e for k, e in equations.items() if not e.is_const()}
        m = sum(e.n_terms for e in pending.values())
        expected = len(program.state.virtual_candidates()) / (m * len(pending))
        assert program._benefit(equations) == pytest.approx(expected)

    def test_threshold_infinite_never_pushes(self):
        program = self._program(theta=float("inf"))
        result = program.on_start()
        assert all(m.kind != MessageKind.EQUATION for m in result.messages)
        assert program.pushes_triggered == 0

    def test_push_happens_once(self):
        program = self._program(theta=0.0)
        result = program.on_start()
        eq_msgs = [m for m in result.messages if m.kind == MessageKind.EQUATION]
        assert eq_msgs, "theta=0 must trigger a push"
        assert program.push_done
        # second attempt is a no-op
        assert program._try_push() == []


class TestPushEndToEnd:
    def test_chain_correct_at_every_theta(self):
        q, g, frag = figure2(16, close_cycle=False)
        oracle = simulation(q, g)
        for theta in (0.0, 0.1, 0.2, 0.5, 2.0):
            result = run_dgpm(q, frag, DgpmConfig(push_threshold=theta))
            assert result.relation == oracle, theta

    def test_rewire_forwarding_keeps_correctness(self):
        # A graph where the pushed equations' leaves falsify *before* the
        # rewire can land: forwarding must cover the gap.
        g = DiGraph(
            {i: lab for i, lab in enumerate("ABCABC")},
            [(0, 1), (1, 2), (3, 4), (4, 5), (2, 3), (5, 0)],
        )
        frag = fragment_graph(g, {0: 0, 1: 1, 2: 2, 3: 0, 4: 1, 5: 2})
        q = Pattern({"a": "A", "b": "B", "c": "C"}, [("a", "b"), ("b", "c"), ("c", "a")])
        oracle = simulation(q, g)
        for theta in (0.0, 0.2):
            assert run_dgpm(q, frag, DgpmConfig(push_threshold=theta)).relation == oracle

    def test_equation_blowup_falls_back_to_values(self):
        q, g, frag = figure2(12, close_cycle=False)
        config = DgpmConfig(push_max_terms=0)  # force the blowup guard
        result = run_dgpm(q, frag, config)
        assert result.relation == simulation(q, g)
        assert result.metrics.extras["pushes"] == 0
