"""Deeper protocol invariants of dGPM, beyond end-to-end correctness."""

import pytest

from repro.core import DgpmConfig, run_dgpm
from repro.graph.digraph import DiGraph
from repro.graph.examples import figure2
from repro.graph.pattern import Pattern
from repro.partition.fragmentation import fragment_graph
from repro.runtime.messages import MessageKind
from repro.simulation import simulation


class TestChainPropagation:
    """The open Figure-2 chain: one falsification per round, end to end."""

    def test_exactly_one_message_per_hop(self):
        n = 10
        q, g, frag = figure2(n, close_cycle=False)
        result = run_dgpm(q, frag, DgpmConfig(enable_push=False))
        # The falsification travels S_n -> S_1, one A-variable per site;
        # B-variables are local to each site (A_i, B_i colocated).
        assert result.metrics.n_messages == n - 1
        assert result.metrics.n_rounds >= n - 1

    def test_closed_cycle_ships_nothing(self):
        q, g, frag = figure2(10)
        result = run_dgpm(q, frag, DgpmConfig(enable_push=False))
        assert result.metrics.n_messages == 0
        assert result.relation == simulation(q, g)


class TestShipmentDiscipline:
    def test_no_duplicate_variable_per_watcher(self):
        # Inspect raw messages on a dense instance: each (var, dst) at most once.
        from repro.core.depgraph import DependencyGraphs
        from repro.core.dgpm import DgpmSiteProgram
        from repro.runtime.engine import SyncEngine
        from repro.runtime.network import Network

        g = DiGraph({i: "AB"[i % 2] for i in range(12)})
        for i in range(12):
            g.add_edge(i, (i + 1) % 12)
            g.add_edge(i, (i + 5) % 12)
        g.remove_edge(0, 1)
        frag = fragment_graph(g, {i: i % 3 for i in range(12)})
        q = Pattern({"a": "A", "b": "B"}, [("a", "b"), ("b", "a")])
        config = DgpmConfig(enable_push=False)
        deps = DependencyGraphs(frag)
        network = Network(config.cost)
        programs = {
            f.fid: DgpmSiteProgram(f.fid, frag, q, deps, config) for f in frag
        }
        sent = []
        original_send = network.send

        def spy(message):
            if message.kind == MessageKind.VAR_UPDATE:
                sent.append((tuple(message.payload), message.dst))
            original_send(message)

        network.send = spy
        engine = SyncEngine(programs, network, config.cost)
        engine.run_fixpoint()
        assert len(sent) == len(set(sent)), "duplicate (variable, watcher) shipment"

    def test_messages_only_to_genuine_watchers(self):
        from repro.core.depgraph import DependencyGraphs

        q, g, frag = figure2(8, close_cycle=False)
        deps = DependencyGraphs(frag)
        # watcher sets on the chain are single-site
        for frag_i in frag:
            for node in frag_i.in_nodes:
                assert len(deps.watcher_sites(frag_i.fid, node)) == 1


class TestResultCollection:
    def test_boolean_only_payload_is_small(self):
        # two fragments with 12 matches each: the data-selecting payload
        # carries every pair, the Boolean payload one bit per query node
        from repro.graph.examples import figure2_two_site

        q, g, frag = figure2_two_site(12, close_cycle=True)
        full = run_dgpm(q, frag, DgpmConfig(boolean_only=False, enable_push=False))
        boolean = run_dgpm(q, frag, DgpmConfig(boolean_only=True, enable_push=False))
        assert full.is_match and boolean.is_match
        assert (
            boolean.metrics.ds_breakdown["result"]
            < full.metrics.ds_breakdown["result"]
        )

    def test_result_bytes_track_match_count(self):
        q, g, frag = figure2(6)
        small = run_dgpm(q, frag, DgpmConfig(enable_push=False))
        q2, g2, frag2 = figure2(24)
        big = run_dgpm(q2, frag2, DgpmConfig(enable_push=False))
        assert big.metrics.ds_breakdown["result"] > small.metrics.ds_breakdown["result"]
