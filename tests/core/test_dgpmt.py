"""Tests for algorithm dGPMt (Corollary 4, trees)."""

import pytest

from repro.core import run_dgpm, run_dgpmt
from repro.errors import FragmentationError, GraphError
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_tree
from repro.graph.pattern import Pattern
from repro.partition import fragment_graph, random_partition, tree_partition
from repro.bench.workloads import tree_pattern
from repro.simulation import simulation


class TestPreconditions:
    def test_non_tree_rejected(self):
        g = DiGraph({1: "A", 2: "B"}, [(1, 2), (2, 1)])
        frag = random_partition(g, 2, seed=0)
        q = Pattern({"a": "A"})
        with pytest.raises(GraphError):
            run_dgpmt(q, frag)

    def test_disconnected_fragments_rejected(self):
        tree = random_tree(20, seed=1)
        # deliberately scatter nodes so fragments are not subtrees
        frag = random_partition(tree, 4, seed=1)
        q = Pattern({"a": "L0"})
        if not frag.has_connected_fragments():
            with pytest.raises(FragmentationError):
                run_dgpmt(q, frag)


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(25))
    def test_matches_oracle_on_random_trees(self, seed):
        tree = random_tree(30 + seed, n_labels=4, seed=seed)
        frag = tree_partition(tree, 2 + seed % 5, seed=seed)
        q = tree_pattern(tree, 3, seed=seed)
        result = run_dgpmt(q, frag)
        assert result.relation == simulation(q, tree)

    def test_agrees_with_dgpm(self):
        tree = random_tree(150, n_labels=5, seed=7)
        frag = tree_partition(tree, 6, seed=7)
        q = tree_pattern(tree, 4, seed=7)
        assert run_dgpmt(q, frag).relation == run_dgpm(q, frag).relation

    def test_cyclic_query_never_matches_tree(self):
        tree = random_tree(40, n_labels=2, seed=3)
        frag = tree_partition(tree, 3, seed=3)
        q = Pattern({"a": "L0", "b": "L1"}, [("a", "b"), ("b", "a")])
        result = run_dgpmt(q, frag)
        assert not result.is_match

    def test_single_fragment_tree(self):
        tree = random_tree(25, n_labels=3, seed=4)
        frag = tree_partition(tree, 1, seed=4)
        q = tree_pattern(tree, 2, seed=4)
        assert run_dgpmt(q, frag).relation == simulation(q, tree)


class TestTwoRoundProtocol:
    def test_exactly_two_communication_trips(self):
        tree = random_tree(200, n_labels=4, seed=9)
        frag = tree_partition(tree, 8, seed=9)
        q = tree_pattern(tree, 3, seed=9)
        result = run_dgpmt(q, frag)
        # round 1: vectors to coordinator; round 2: values back; round 3 idle
        assert result.metrics.n_rounds <= 3

    def test_ds_scales_with_fragments_not_graph(self):
        q_label_seed = 11
        sizes = [200, 400, 800]
        shipments = []
        for n in sizes:
            tree = random_tree(n, n_labels=3, seed=q_label_seed)
            frag = tree_partition(tree, 6, seed=q_label_seed)
            q = tree_pattern(tree, 3, seed=q_label_seed)
            result = run_dgpmt(q, frag)
            shipments.append(result.metrics.ds_bytes)
        # |F| fixed at 6: shipment must not grow linearly with |G|
        assert max(shipments) <= 3 * min(shipments)

    def test_one_equation_vector_per_fragment(self):
        tree = random_tree(100, n_labels=3, seed=13)
        frag = tree_partition(tree, 5, seed=13)
        q = tree_pattern(tree, 3, seed=13)
        result = run_dgpmt(q, frag)
        breakdown = result.metrics.ds_breakdown
        # equations up, values down: messages = 2 * |F|
        assert result.metrics.n_messages <= 2 * frag.n_fragments
        assert "equation" in breakdown
