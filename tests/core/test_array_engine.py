"""Unit tests for the array engine's compilation layer.

Covers the pieces underneath :class:`~repro.core.arraystate.ArrayEvalState`:
the CSR kernels, :meth:`DiGraph.dense_csr`, the per-fragment columnar
snapshot (freshness, per-label caches, global-id tables, shipping routes),
and the numpy-less failure mode.  End-to-end answer parity lives in
``tests/core/test_property_engines.py``.
"""

import sys

import pytest

import repro.core.arraycompile as ac
from repro.core.depgraph import DependencyGraphs
from repro.graph.digraph import DiGraph
from repro.partition.fragmentation import fragment_graph
from repro.session.cache import LabelInterner

np = pytest.importorskip("numpy")


def small_graph() -> DiGraph:
    return DiGraph(
        {0: "A", 1: "B", 2: "A", 3: "C", 4: "B"},
        [(0, 1), (1, 2), (2, 3), (3, 0), (1, 4), (4, 2), (0, 2)],
    )


def small_fragmentation():
    return fragment_graph(small_graph(), {0: 0, 1: 0, 2: 1, 3: 1, 4: 1})


# ----------------------------------------------------------------------
# CSR kernels
# ----------------------------------------------------------------------

def test_dense_csr_round_trips_adjacency(rng):
    n = 30
    graph = DiGraph({i: "AB"[i % 2] for i in range(n)})
    for _ in range(4 * n):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
    nodes, index, fwd_ip, fwd_ix, rev_ip, rev_ix = graph.dense_csr()
    assert sorted(nodes) == sorted(graph.nodes())
    for i, node in enumerate(nodes):
        assert index[node] == i
        succ = {nodes[j] for j in fwd_ix[fwd_ip[i]:fwd_ip[i + 1]]}
        pred = {nodes[j] for j in rev_ix[rev_ip[i]:rev_ip[i + 1]]}
        assert succ == set(graph.successors(node))
        assert pred == set(graph.predecessors(node))


def test_gather_csr_matches_slicing(rng):
    graph = DiGraph({i: "A" for i in range(20)})
    for _ in range(60):
        u, v = rng.randrange(20), rng.randrange(20)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
    _, _, indptr, indices, _, _ = graph.dense_csr()
    rows = np.asarray([0, 7, 7, 19, 3], dtype=np.int64)
    flat, counts = ac.gather_csr(indptr, indices, rows)
    expected = [indices[indptr[r]:indptr[r + 1]] for r in rows.tolist()]
    assert counts.tolist() == [len(e) for e in expected]
    assert flat.tolist() == [x for e in expected for x in e.tolist()]


def test_gather_csr_all_empty_rows():
    indptr = np.zeros(4, dtype=np.int64)  # 3 nodes, no edges
    indices = np.empty(0, dtype=np.int64)
    flat, counts = ac.gather_csr(indptr, indices, np.asarray([0, 2], dtype=np.int64))
    assert flat.size == 0
    assert counts.tolist() == [0, 0]


def test_segment_any_and_sum_match_python(rng):
    counts = np.asarray([rng.randrange(4) for _ in range(12)], dtype=np.int64)
    values = np.asarray(
        [rng.random() < 0.3 for _ in range(int(counts.sum()))], dtype=bool
    )
    segments, pos = [], 0
    for c in counts.tolist():
        segments.append(values[pos:pos + c])
        pos += c
    assert ac.segment_any(values, counts).tolist() == [
        bool(seg.any()) for seg in segments
    ]
    indptr = np.concatenate(
        (np.zeros(1, dtype=np.int64), np.cumsum(counts, dtype=np.int64))
    )
    assert ac.segment_sum_full(values, indptr).tolist() == [
        int(seg.sum()) for seg in segments
    ]


# ----------------------------------------------------------------------
# CompiledFragment
# ----------------------------------------------------------------------

def test_compiled_fragment_masks_and_labels():
    fragmentation = small_fragmentation()
    interner = LabelInterner()
    for frag in fragmentation:
        cf = ac.CompiledFragment(frag, interner)
        for i, v in enumerate(cf.nodes):
            assert cf.labels[i] == interner.intern(frag.graph.label(v))
            assert cf.local_mask[i] == (v in frag.local_nodes)
            assert cf.virtual_mask[i] == (v in frag.virtual_nodes)
            assert cf.in_mask[i] == (v in frag.in_nodes)


def test_label_row_and_count_col_cached_and_correct():
    fragmentation = small_fragmentation()
    interner = LabelInterner()
    frag = fragmentation[0]
    cf = ac.CompiledFragment(frag, interner)
    for label in ("A", "B", "C"):
        lab = interner.intern(label)
        row = cf.label_row(lab)
        assert cf.label_row(lab) is row  # cached, not rebuilt
        assert row.tolist() == [
            frag.graph.label(v) == label for v in cf.nodes
        ]
        col = cf.count_col(lab)
        assert cf.count_col(lab) is col
        assert col.tolist() == [
            sum(1 for w in frag.graph.successors(v) if frag.graph.label(w) == label)
            for v in cf.nodes
        ]


def test_is_fresh_tracks_graph_version():
    fragmentation = small_fragmentation()
    cf = ac.CompiledFragment(fragmentation[0], LabelInterner())
    assert cf.is_fresh(fragmentation[0])
    fragmentation.delete_edge(0, 1)  # intra-fragment edge of fragment 0
    assert not cf.is_fresh(fragmentation[0])


def test_compiled_fragmentation_recompiles_only_stale_fragments():
    fragmentation = small_fragmentation()
    compiled = ac.CompiledFragmentation(fragmentation).warm()
    assert compiled.compilations == fragmentation.n_fragments
    compiled.warm()  # nothing moved: every entry is still fresh
    assert compiled.compilations == fragmentation.n_fragments

    old = {frag.fid: compiled.get(frag.fid) for frag in fragmentation}
    fragmentation.delete_edge(2, 3)  # both endpoints live in fragment 1
    stale = [
        fid for fid, entry in old.items()
        if not entry.is_fresh(fragmentation[fid])
    ]
    assert stale  # the mutation must invalidate at least its own fragment
    compiled.warm()
    assert compiled.compilations == fragmentation.n_fragments + len(stale)
    for fid in stale:
        assert compiled.get(fid) is not old[fid]
    for frag in fragmentation:
        if frag.fid not in stale:
            assert compiled.get(frag.fid) is old[frag.fid]


def test_gid_map_shared_across_fragments_and_g2l_inverts():
    fragmentation = small_fragmentation()
    compiled = ac.CompiledFragmentation(fragmentation).warm()
    seen = {}
    for frag in fragmentation:
        cf = compiled.get(frag.fid)
        for i, v in enumerate(cf.nodes):
            gid = int(cf.gids[i])
            # one global id per node, no matter how many fragments hold a copy
            assert seen.setdefault(v, gid) == gid
            assert cf.g2l()[gid] == i
    # every registered id belongs to some node, densely
    assert sorted(seen.values()) == list(range(len(compiled.gid_map)))


def test_standalone_compiled_fragment_has_no_gids():
    fragmentation = small_fragmentation()
    cf = ac.CompiledFragment(fragmentation[0], LabelInterner())
    assert cf.gids is None  # gid shipping only exists under a shared cache


def test_shipping_routes_group_by_watcher_set_and_track_deps_version():
    fragmentation = small_fragmentation()
    deps = DependencyGraphs(fragmentation)
    compiled = ac.CompiledFragmentation(fragmentation).warm()
    for frag in fragmentation:
        cf = compiled.get(frag.fid)
        group_of, groups = cf.shipping_routes(deps)
        # cached: same table object until deps changes
        assert cf.shipping_routes(deps)[0] is group_of
        for i, v in enumerate(cf.nodes):
            peers = tuple(sorted(deps.watcher_sites(frag.fid, v)))
            if cf.in_mask[i]:
                assert groups[group_of[i]] == peers
            else:
                assert group_of[i] == -1
        deps.version += 1  # what apply_delta does on any watcher patch
        assert cf.shipping_routes(deps)[0] is not group_of


# ----------------------------------------------------------------------
# numpy-less failure mode
# ----------------------------------------------------------------------

def _hide_numpy(monkeypatch):
    monkeypatch.setattr(ac, "_np", None)
    monkeypatch.setitem(sys.modules, "numpy", None)  # import raises


def test_require_numpy_without_numpy_is_one_clear_error(monkeypatch):
    _hide_numpy(monkeypatch)
    with pytest.raises(RuntimeError, match="engine='array' requires numpy"):
        ac.require_numpy()
    assert not ac.have_numpy()


def test_dict_engine_serves_without_numpy(monkeypatch):
    _hide_numpy(monkeypatch)
    from repro.graph.pattern import Pattern
    from repro.session import SimulationSession
    from repro.simulation import simulation

    graph = small_graph()
    session = SimulationSession(small_fragmentation())
    pattern = Pattern({"x": "A", "y": "B"}, [("x", "y")])
    result = session.run(pattern, algorithm="dgpm")  # default engine: dict
    assert result.relation == simulation(pattern, graph)
    with pytest.raises(RuntimeError, match="requires numpy"):
        session.run(pattern, algorithm="dgpm", engine="array")
