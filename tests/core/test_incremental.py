"""Tests for the incremental maintenance session (Section 4.2 / [13])."""

import random

import pytest

from repro.core import DgpmConfig
from repro.core.incremental import IncrementalDgpmSession
from repro.errors import GraphError, ReproError
from repro.graph.digraph import DiGraph
from repro.graph.examples import figure1
from repro.graph.generators import random_labeled_graph
from repro.graph.pattern import Pattern
from repro.partition import random_partition
from repro.simulation import simulation


class TestDeletion:
    def test_example8_deletion_matches_oracle(self):
        q, g, frag = figure1()
        session = IncrementalDgpmSession(q, frag)
        assert session.relation() == simulation(q, g)
        update = session.delete_edge("f2", "sp1")
        g.remove_edge("f2", "sp1")
        assert session.relation() == simulation(q, g)
        assert not session.relation().is_match
        assert update.kind == "delete"
        assert update.n_messages > 0  # the cascade crosses sites

    def test_caller_objects_never_mutated(self):
        q, g, frag = figure1()
        session = IncrementalDgpmSession(q, frag)
        session.delete_edge("f2", "sp1")
        assert g.has_edge("f2", "sp1")            # caller's graph intact
        assert frag.graph.has_edge("f2", "sp1")   # caller's fragmentation intact

    def test_irrelevant_deletion_ships_nothing(self):
        q, g, frag = figure1()
        session = IncrementalDgpmSession(q, frag)
        # (yb1, f1) feeds no surviving match: yb1/f1 were falsified already
        update = session.delete_edge("yb1", "f1")
        assert update.n_messages == 0
        assert update.ds_bytes == 0
        g.remove_edge("yb1", "f1")
        assert session.relation() == simulation(q, g)

    @pytest.mark.parametrize("seed", range(15))
    def test_random_deletion_sequences(self, seed):
        rng = random.Random(seed)
        graph = random_labeled_graph(30, 120, n_labels=3, seed=seed)
        frag = random_partition(graph, 3, seed=seed)
        q = Pattern({"a": "L0", "b": "L1"}, [("a", "b"), ("b", "a")])
        session = IncrementalDgpmSession(q, frag)
        edges = list(graph.edges())
        rng.shuffle(edges)
        for u, v in edges[:12]:
            session.delete_edge(u, v)
            graph.remove_edge(u, v)
            assert session.relation() == simulation(q, graph), (seed, u, v)

    def test_missing_edge_rejected(self):
        q, _, frag = figure1()
        session = IncrementalDgpmSession(q, frag)
        with pytest.raises(GraphError):
            session.delete_edge("yb1", "sp3")

    def test_metrics_fields(self):
        q, _, frag = figure1()
        session = IncrementalDgpmSession(q, frag)
        update = session.delete_edge("f2", "sp1")
        assert update.wall_seconds > 0
        assert update.n_rounds >= 1
        assert update.falsified_local >= 1


class TestFragmentMetadataRepair:
    """Regression: deleting a crossing edge used to leave the owner
    fragment's frozen ``Fi.O``/``Fi.I`` metadata stale, so a later
    ``Fragmentation.validate()`` raised on a perfectly legal update and
    stale virtual variables lingered in ``virtual_candidates()``."""

    @staticmethod
    def _chain_session():
        graph = DiGraph({0: "L0", 1: "L1", 2: "L2"}, [(0, 1), (1, 2)])
        frag = random_partition(graph, 3, seed=0)
        # Force one node per fragment regardless of partitioner luck.
        from repro.partition.fragmentation import fragment_graph

        frag = fragment_graph(graph, {0: 0, 1: 1, 2: 2})
        q = Pattern({"a": "L0", "b": "L1", "c": "L2"}, [("a", "b"), ("b", "c")])
        return q, graph, frag

    def test_delete_last_crossing_edge_validates(self):
        q, _, frag = self._chain_session()
        session = IncrementalDgpmSession(q, frag)
        session.delete_edge(1, 2)  # the only crossing edge into node 2
        session.fragmentation.validate()  # raised FragmentationError before
        owner = session.fragmentation.owner(1)
        fragment = session.fragmentation[owner]
        assert 2 not in fragment.virtual_nodes
        assert 2 not in fragment.graph
        assert 2 not in session.fragmentation[session.fragmentation.owner(2)].in_nodes

    def test_stale_virtual_candidates_pruned(self):
        q, _, frag = self._chain_session()
        session = IncrementalDgpmSession(q, frag)
        owner = session.fragmentation.owner(1)
        session.delete_edge(1, 2)
        state = session.programs[owner].state
        assert all(v != 2 for _, v in state.virtual_candidates())

    def test_random_crossing_deletions_keep_validating(self):
        graph = random_labeled_graph(24, 80, n_labels=3, seed=2)
        frag = random_partition(graph, 3, seed=2)
        q = Pattern({"a": "L0", "b": "L1"}, [("a", "b")])
        session = IncrementalDgpmSession(q, frag)
        crossing = [
            (u, v) for u, v in session.fragmentation.crossing_edges()
        ]
        for u, v in crossing[:15]:
            session.delete_edge(u, v)
            session.fragmentation.validate()


class TestAffectedAreaAccounting:
    """Regression: remote falsifications were never counted (the dead
    ``n_falsified += 0``), so ``falsified_local`` under-reported |AFF|."""

    def test_remote_falsifications_counted(self):
        graph = DiGraph({0: "L0", 1: "L1", 2: "L2"}, [(0, 1), (1, 2)])
        from repro.partition.fragmentation import fragment_graph

        frag = fragment_graph(graph, {0: 0, 1: 1, 2: 2})
        q = Pattern({"a": "L0", "b": "L1", "c": "L2"}, [("a", "b"), ("b", "c")])
        session = IncrementalDgpmSession(q, frag)
        assert session.relation().is_match
        # Deleting (1, 2) falsifies X(b, 1) at site 1 and, via the shipped
        # falsification, X(a, 0) at site 0: |AFF| = 2, spanning two sites.
        update = session.delete_edge(1, 2)
        assert update.falsified_local == 2
        graph.remove_edge(1, 2)
        assert session.relation() == simulation(q, graph)

    def test_figure1_cascade_counts_every_site(self):
        q, g, frag = figure1()
        session = IncrementalDgpmSession(q, frag)
        update = session.delete_edge("f2", "sp1")
        g.remove_edge("f2", "sp1")
        assert session.relation() == simulation(q, g)
        # The cascade kills the whole cycle: more variables than the owner
        # site alone ever falsifies.
        assert update.falsified_local > 2
        assert update.n_messages > 0


class TestInsertion:
    def test_insert_revives_matches(self):
        q, g, frag = figure1()
        session = IncrementalDgpmSession(q, frag)
        session.delete_edge("f2", "sp1")
        assert not session.relation().is_match
        update = session.insert_edge("f2", "sp1")
        assert update.kind == "insert(recompute)"
        assert session.relation() == simulation(q, g)
        assert session.relation().is_match

    def test_insert_new_edge_matches_oracle(self):
        graph = random_labeled_graph(25, 60, n_labels=3, seed=4)
        frag = random_partition(graph, 3, seed=4)
        q = Pattern({"a": "L0", "b": "L1"}, [("a", "b")])
        session = IncrementalDgpmSession(q, frag)
        candidates = [
            (u, v)
            for u in graph.nodes()
            for v in graph.nodes()
            if u != v and not graph.has_edge(u, v)
        ]
        u, v = sorted(candidates)[0]
        session.insert_edge(u, v)
        graph.add_edge(u, v)
        assert session.relation() == simulation(q, graph)

    def test_duplicate_insert_rejected(self):
        q, g, frag = figure1()
        session = IncrementalDgpmSession(q, frag)
        with pytest.raises(GraphError):
            session.insert_edge("f2", "sp1")

    def test_unknown_endpoint_rejected(self):
        q, _, frag = figure1()
        session = IncrementalDgpmSession(q, frag)
        with pytest.raises(GraphError):
            session.insert_edge("f2", "nope")


class TestMixedWorkload:
    def test_interleaved_updates(self, rng, rng_seed):
        seed = rng_seed % 1000
        graph = random_labeled_graph(24, 90, n_labels=2, seed=seed)
        frag = random_partition(graph, 3, seed=seed)
        q = Pattern({"a": "L0", "b": "L1"}, [("a", "b"), ("b", "a")])
        session = IncrementalDgpmSession(q, frag)
        for step in range(10):
            if rng.random() < 0.7 and graph.n_edges:
                u, v = sorted(graph.edges())[rng.randrange(graph.n_edges)]
                session.delete_edge(u, v)
                graph.remove_edge(u, v)
            else:
                free = [
                    (a, b) for a in graph.nodes() for b in graph.nodes()
                    if a != b and not graph.has_edge(a, b)
                ]
                if not free:
                    continue
                u, v = sorted(free)[rng.randrange(len(free))]
                session.insert_edge(u, v)
                graph.add_edge(u, v)
            assert session.relation() == simulation(q, graph), step

    def test_nonincremental_config_rejected(self):
        q, _, frag = figure1()
        with pytest.raises(ReproError):
            IncrementalDgpmSession(q, frag, DgpmConfig(incremental=False))
