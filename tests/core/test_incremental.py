"""Tests for the incremental maintenance session (Section 4.2 / [13])."""

import random

import pytest

from repro.core import DgpmConfig
from repro.core.incremental import IncrementalDgpmSession
from repro.errors import GraphError, ReproError
from repro.graph.digraph import DiGraph
from repro.graph.examples import figure1
from repro.graph.generators import random_labeled_graph
from repro.graph.pattern import Pattern
from repro.partition import random_partition
from repro.simulation import simulation


class TestDeletion:
    def test_example8_deletion_matches_oracle(self):
        q, g, frag = figure1()
        session = IncrementalDgpmSession(q, frag)
        assert session.relation() == simulation(q, g)
        update = session.delete_edge("f2", "sp1")
        g.remove_edge("f2", "sp1")
        assert session.relation() == simulation(q, g)
        assert not session.relation().is_match
        assert update.kind == "delete"
        assert update.n_messages > 0  # the cascade crosses sites

    def test_caller_objects_never_mutated(self):
        q, g, frag = figure1()
        session = IncrementalDgpmSession(q, frag)
        session.delete_edge("f2", "sp1")
        assert g.has_edge("f2", "sp1")            # caller's graph intact
        assert frag.graph.has_edge("f2", "sp1")   # caller's fragmentation intact

    def test_irrelevant_deletion_ships_nothing(self):
        q, g, frag = figure1()
        session = IncrementalDgpmSession(q, frag)
        # (yb1, f1) feeds no surviving match: yb1/f1 were falsified already
        update = session.delete_edge("yb1", "f1")
        assert update.n_messages == 0
        assert update.ds_bytes == 0
        g.remove_edge("yb1", "f1")
        assert session.relation() == simulation(q, g)

    @pytest.mark.parametrize("seed", range(15))
    def test_random_deletion_sequences(self, seed):
        rng = random.Random(seed)
        graph = random_labeled_graph(30, 120, n_labels=3, seed=seed)
        frag = random_partition(graph, 3, seed=seed)
        q = Pattern({"a": "L0", "b": "L1"}, [("a", "b"), ("b", "a")])
        session = IncrementalDgpmSession(q, frag)
        edges = list(graph.edges())
        rng.shuffle(edges)
        for u, v in edges[:12]:
            session.delete_edge(u, v)
            graph.remove_edge(u, v)
            assert session.relation() == simulation(q, graph), (seed, u, v)

    def test_missing_edge_rejected(self):
        q, _, frag = figure1()
        session = IncrementalDgpmSession(q, frag)
        with pytest.raises(GraphError):
            session.delete_edge("yb1", "sp3")

    def test_metrics_fields(self):
        q, _, frag = figure1()
        session = IncrementalDgpmSession(q, frag)
        update = session.delete_edge("f2", "sp1")
        assert update.wall_seconds > 0
        assert update.n_rounds >= 1
        assert update.falsified_local >= 1


class TestInsertion:
    def test_insert_revives_matches(self):
        q, g, frag = figure1()
        session = IncrementalDgpmSession(q, frag)
        session.delete_edge("f2", "sp1")
        assert not session.relation().is_match
        update = session.insert_edge("f2", "sp1")
        assert update.kind == "insert(recompute)"
        assert session.relation() == simulation(q, g)
        assert session.relation().is_match

    def test_insert_new_edge_matches_oracle(self):
        graph = random_labeled_graph(25, 60, n_labels=3, seed=4)
        frag = random_partition(graph, 3, seed=4)
        q = Pattern({"a": "L0", "b": "L1"}, [("a", "b")])
        session = IncrementalDgpmSession(q, frag)
        candidates = [
            (u, v)
            for u in graph.nodes()
            for v in graph.nodes()
            if u != v and not graph.has_edge(u, v)
        ]
        u, v = sorted(candidates)[0]
        session.insert_edge(u, v)
        graph.add_edge(u, v)
        assert session.relation() == simulation(q, graph)

    def test_duplicate_insert_rejected(self):
        q, g, frag = figure1()
        session = IncrementalDgpmSession(q, frag)
        with pytest.raises(GraphError):
            session.insert_edge("f2", "sp1")

    def test_unknown_endpoint_rejected(self):
        q, _, frag = figure1()
        session = IncrementalDgpmSession(q, frag)
        with pytest.raises(GraphError):
            session.insert_edge("f2", "nope")


class TestMixedWorkload:
    def test_interleaved_updates(self):
        rng = random.Random(9)
        graph = random_labeled_graph(24, 90, n_labels=2, seed=9)
        frag = random_partition(graph, 3, seed=9)
        q = Pattern({"a": "L0", "b": "L1"}, [("a", "b"), ("b", "a")])
        session = IncrementalDgpmSession(q, frag)
        for step in range(10):
            if rng.random() < 0.7 and graph.n_edges:
                u, v = sorted(graph.edges())[rng.randrange(graph.n_edges)]
                session.delete_edge(u, v)
                graph.remove_edge(u, v)
            else:
                free = [
                    (a, b) for a in graph.nodes() for b in graph.nodes()
                    if a != b and not graph.has_edge(a, b)
                ]
                if not free:
                    continue
                u, v = sorted(free)[rng.randrange(len(free))]
                session.insert_edge(u, v)
                graph.add_edge(u, v)
            assert session.relation() == simulation(q, graph), step

    def test_nonincremental_config_rejected(self):
        q, _, frag = figure1()
        with pytest.raises(ReproError):
            IncrementalDgpmSession(q, frag, DgpmConfig(incremental=False))
