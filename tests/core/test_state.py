"""Unit tests for the per-site partial evaluation state (lEval's engine)."""

import pytest

from repro.boolean.expr import TRUE, Var
from repro.core.state import LocalEvalState
from repro.graph.digraph import DiGraph
from repro.graph.examples import figure1
from repro.graph.pattern import Pattern
from repro.partition.fragmentation import fragment_graph


@pytest.fixture
def two_site():
    """A -> B crossing a site boundary; B -> C local to site 1."""
    g = DiGraph({1: "A", 2: "B", 3: "C"}, [(1, 2), (2, 3)])
    frag = fragment_graph(g, {1: 0, 2: 1, 3: 1})
    q = Pattern({"a": "A", "b": "B", "c": "C"}, [("a", "b"), ("b", "c")])
    return g, frag, q


class TestInitialEvaluation:
    def test_optimistic_virtual_assumption(self, two_site):
        _, frag, q = two_site
        state = LocalEvalState(frag[0], q)
        falsified = state.run_initial()
        # node 1 keeps its candidacy because virtual node 2 is assumed true
        assert falsified == []
        assert state.is_candidate("a", 1)
        assert state.is_candidate("b", 2)  # the optimistic virtual

    def test_local_falsification(self):
        g = DiGraph({1: "A", 2: "B"}, [])  # no edge: a cannot match
        frag = fragment_graph(g, {1: 0, 2: 0})
        q = Pattern({"a": "A", "b": "B"}, [("a", "b")])
        state = LocalEvalState(frag[0], q)
        falsified = state.run_initial()
        assert ("a", 1) in falsified
        assert not state.is_candidate("a", 1)

    def test_run_initial_only_once(self, two_site):
        _, frag, q = two_site
        state = LocalEvalState(frag[0], q)
        state.run_initial()
        with pytest.raises(RuntimeError):
            state.run_initial()

    def test_label_mismatch_never_candidate(self, two_site):
        _, frag, q = two_site
        state = LocalEvalState(frag[0], q)
        assert not state.is_candidate("b", 1)
        assert not state.is_candidate("a", 2)


class TestIncrementalFalsification:
    def test_virtual_falsification_cascades(self, two_site):
        _, frag, q = two_site
        state = LocalEvalState(frag[0], q)
        state.run_initial()
        newly = state.falsify_virtual([("b", 2)])
        assert ("a", 1) in newly
        assert not state.is_candidate("a", 1)

    def test_duplicate_falsification_is_noop(self, two_site):
        _, frag, q = two_site
        state = LocalEvalState(frag[0], q)
        state.run_initial()
        state.falsify_virtual([("b", 2)])
        assert state.falsify_virtual([("b", 2)]) == []

    def test_incremental_equals_from_scratch(self):
        # falsify incrementally vs rebuilding with the same knowledge
        g = DiGraph(
            {1: "A", 2: "B", 3: "B", 4: "C"},
            [(1, 2), (1, 3), (2, 4), (3, 4)],
        )
        frag = fragment_graph(g, {1: 0, 2: 0, 3: 1, 4: 1})
        q = Pattern({"a": "A", "b": "B", "c": "C"}, [("a", "b"), ("b", "c")])
        inc = LocalEvalState(frag[0], q)
        inc.run_initial()
        inc.falsify_virtual([("b", 3), ("c", 4)])
        scratch = LocalEvalState(frag[0], q, known_false_virtual=[("b", 3), ("c", 4)])
        scratch.run_initial()
        assert inc.local_matches() == scratch.local_matches()

    def test_affected_area_only(self):
        # an unrelated virtual falsification leaves other counters intact
        g = DiGraph({1: "A", 2: "B", 3: "A", 4: "B"}, [(1, 2), (3, 4)])
        frag = fragment_graph(g, {1: 0, 3: 0, 2: 1, 4: 1})
        q = Pattern({"a": "A", "b": "B"}, [("a", "b")])
        state = LocalEvalState(frag[0], q)
        state.run_initial()
        newly = state.falsify_virtual([("b", 2)])
        assert newly == [("a", 1)]
        assert state.is_candidate("a", 3)


class TestViews:
    def test_local_matches_exclude_virtuals(self, two_site):
        _, frag, q = two_site
        state = LocalEvalState(frag[0], q)
        state.run_initial()
        matches = state.local_matches()
        assert matches["a"] == {1}
        assert matches["b"] == set()  # 2 is virtual, not local

    def test_virtual_candidates(self, two_site):
        _, frag, q = two_site
        state = LocalEvalState(frag[0], q)
        state.run_initial()
        assert state.virtual_candidates() == [("b", 2)]


class TestSymbolicEquations:
    def test_figure1_example6_equations(self):
        q, _, frag = figure1()
        state = LocalEvalState(frag[0], q)
        state.run_initial()
        eqs = state.in_node_equations()
        assert eqs[("YF", "yf1")] == Var(("F", "f2"))
        assert eqs[("SP", "sp1")] == Var(("YF", "yf2")) | Var(("F", "f2"))

    def test_childless_query_node_is_true(self):
        g = DiGraph({1: "A", 2: "A"}, [(1, 2)])
        frag = fragment_graph(g, {1: 0, 2: 1})
        q = Pattern({"a": "A"})
        state = LocalEvalState(frag[0], q)
        state.run_initial()
        system = state.equation_system()
        assert system.equation(("a", 1)) == TRUE
