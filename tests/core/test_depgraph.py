"""Unit tests for the local dependency graphs (Section 4.1, Example 5)."""

from repro.core.depgraph import DependencyGraphs
from repro.graph.digraph import DiGraph
from repro.graph.examples import figure1, figure5
from repro.partition.fragmentation import fragment_graph


class TestWatchersAndOwners:
    def test_watchers_are_sites_holding_the_node_virtually(self):
        _, _, frag = figure1()
        deps = DependencyGraphs(frag)
        # sp1 is an in-node of S1 and virtual in S2 (edge f2 -> sp1)
        assert deps.watcher_sites(0, "sp1") == {1}
        # yf1 is watched by S3 (sp3 -> yf1, yb3 -> yf1)
        assert deps.watcher_sites(0, "yf1") == {2}

    def test_owner_lookup(self):
        _, _, frag = figure1()
        deps = DependencyGraphs(frag)
        assert deps.owner_site(0, "f2") == 1   # f2 virtual in S1, lives in S2
        assert deps.owner_site(0, "f4") == 2

    def test_unwatched_node_has_no_watchers(self):
        g = DiGraph({1: "A", 2: "B"}, [(1, 2)])
        frag = fragment_graph(g, {1: 0, 2: 1})
        deps = DependencyGraphs(frag)
        assert deps.watcher_sites(1, 1) == set()  # node 1 has no in-edge


class TestEdgesView:
    def test_example5_annotations(self):
        _, _, frag = figure1()
        deps = DependencyGraphs(frag)
        edges = {(src, dst): nodes for src, dst, nodes in deps.edges(2)}
        assert edges[(0, 2)] == frozenset({"f4"})
        assert edges[(1, 2)] == frozenset({"sp3", "yf3"})

    def test_figure5_star_topology(self):
        _, _, frag = figure5()
        deps = DependencyGraphs(frag)
        # yb4 (site 0) is virtual at the SP sites 3 and 4
        assert deps.watcher_sites(0, "yb4") == {3, 4}
        # the YF/F nodes of sites 1 and 2 are watched by site 0 only
        assert deps.watcher_sites(1, "yf4") == {0}
        assert deps.watcher_sites(2, "f7") == {0}

    def test_edges_cover_every_virtual_relationship(self):
        _, _, frag = figure1()
        deps = DependencyGraphs(frag)
        for fragment in frag:
            for v in fragment.virtual_nodes:
                owner = fragment.owner_of_virtual(v)
                assert fragment.fid in deps.watcher_sites(owner, v)
