"""Property-based tests: distributed == centralized, for arbitrary instances.

The central claim of any distributed-evaluation paper: the partitioning of
the data must never change the answer.  Hypothesis generates graphs,
patterns and *partitions* together; every algorithm's result is compared to
the centralized HHK oracle.
"""

from hypothesis import given, settings, strategies as st

from repro.baselines import run_dishhk, run_dmes, run_match
from repro.core import DgpmConfig, run_dgpm, run_dgpmd
from repro.graph.digraph import DiGraph
from repro.graph.pattern import Pattern
from repro.partition.fragmentation import fragment_graph
from repro.simulation import simulation

LABELS = "AB"


@st.composite
def distributed_instances(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    labels = draw(st.lists(st.sampled_from(LABELS), min_size=n, max_size=n))
    graph = DiGraph({i: labels[i] for i in range(n)})
    for _ in range(draw(st.integers(min_value=0, max_value=3 * n))):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            graph.add_edge(u, v)

    n_frag = draw(st.integers(min_value=1, max_value=min(4, n)))
    assignment = {}
    for i in range(n):
        assignment[i] = i % n_frag if i < n_frag else draw(
            st.integers(min_value=0, max_value=n_frag - 1)
        )
    fragmentation = fragment_graph(graph, assignment)

    qn = draw(st.integers(min_value=1, max_value=3))
    qlabels = draw(st.lists(st.sampled_from(LABELS), min_size=qn, max_size=qn))
    qedges = []
    for _ in range(draw(st.integers(min_value=0, max_value=2 * qn))):
        a = draw(st.integers(min_value=0, max_value=qn - 1))
        b = draw(st.integers(min_value=0, max_value=qn - 1))
        qedges.append((a, b))
    pattern = Pattern({i: qlabels[i] for i in range(qn)}, qedges)
    return graph, fragmentation, pattern


@settings(max_examples=60, deadline=None)
@given(distributed_instances())
def test_dgpm_equals_oracle(instance):
    graph, fragmentation, pattern = instance
    oracle = simulation(pattern, graph)
    assert run_dgpm(pattern, fragmentation).relation == oracle


@settings(max_examples=40, deadline=None)
@given(distributed_instances())
def test_dgpm_nopt_equals_oracle(instance):
    graph, fragmentation, pattern = instance
    oracle = simulation(pattern, graph)
    config = DgpmConfig().without_optimizations()
    assert run_dgpm(pattern, fragmentation, config).relation == oracle


@settings(max_examples=40, deadline=None)
@given(distributed_instances())
def test_dgpmd_equals_oracle_on_dag_queries(instance):
    graph, fragmentation, pattern = instance
    if not pattern.is_dag():
        return
    oracle = simulation(pattern, graph)
    assert run_dgpmd(pattern, fragmentation).relation == oracle


@settings(max_examples=30, deadline=None)
@given(distributed_instances())
def test_baselines_equal_oracle(instance):
    graph, fragmentation, pattern = instance
    oracle = simulation(pattern, graph)
    assert run_match(pattern, fragmentation).relation == oracle
    assert run_dishhk(pattern, fragmentation).relation == oracle
    assert run_dmes(pattern, fragmentation).relation == oracle


@settings(max_examples=40, deadline=None)
@given(distributed_instances())
def test_partition_invariance(instance):
    """The same query on the same graph under two different partitions."""
    graph, fragmentation, pattern = instance
    n = graph.n_nodes
    flipped = fragment_graph(
        graph, {i: (0 if i % 2 == 0 else min(1, n - 1) and 1) if n > 1 else 0 for i in range(n)}
    ) if n > 1 else fragmentation
    a = run_dgpm(pattern, fragmentation).relation
    b = run_dgpm(pattern, flipped).relation
    assert a == b


@settings(max_examples=40, deadline=None)
@given(distributed_instances())
def test_ds_budget_holds(instance):
    """Theorem 2's DS budget O(|Ef| |Vq|), on arbitrary instances."""
    graph, fragmentation, pattern = instance
    result = run_dgpm(pattern, fragmentation, DgpmConfig(enable_push=False))
    assert result.metrics.n_messages <= fragmentation.n_crossing_edges * pattern.n_nodes
