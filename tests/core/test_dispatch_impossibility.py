"""Tests for algorithm dispatch and the Theorem-1 audit machinery."""

import pytest

from repro.core import run_auto
from repro.core.dispatch import choose_algorithm
from repro.core.impossibility import (
    audit_data_shipment,
    audit_parallel_time,
)
from repro.graph.digraph import DiGraph
from repro.graph.generators import citation_dag, random_labeled_graph, random_tree
from repro.graph.pattern import Pattern
from repro.partition import random_partition, tree_partition
from repro.bench.workloads import tree_pattern
from repro.simulation import simulation


class TestDispatch:
    def test_tree_instance_uses_dgpmt(self):
        tree = random_tree(50, seed=1)
        frag = tree_partition(tree, 4, seed=1)
        q = tree_pattern(tree, 2, seed=1)
        assert choose_algorithm(q, frag) == "dGPMt"
        result = run_auto(q, frag)
        assert result.metrics.algorithm == "dGPMt"
        assert result.relation == simulation(q, tree)

    def test_dag_instance_uses_dgpmd(self):
        graph = citation_dag(150, 400, seed=2)
        frag = random_partition(graph, 3, seed=2)
        q = Pattern({"a": "venue0", "b": "venue1"}, [("a", "b")])
        assert choose_algorithm(q, frag) == "dGPMd"
        result = run_auto(q, frag)
        assert result.relation == simulation(q, graph)

    def test_general_instance_uses_dgpm(self):
        graph = random_labeled_graph(60, 300, n_labels=3, seed=3)
        frag = random_partition(graph, 3, seed=3)
        q = Pattern({"a": "L0", "b": "L1"}, [("a", "b"), ("b", "a")])
        # random graph of that density is cyclic with overwhelming probability
        assert choose_algorithm(q, frag) == "dGPM"
        result = run_auto(q, frag)
        assert result.relation == simulation(q, graph)

    def test_dag_query_on_cyclic_graph_uses_dgpmd(self):
        g = DiGraph({1: "A", 2: "B"}, [(1, 2), (2, 1)])
        frag = random_partition(g, 2, seed=0)
        q = Pattern({"a": "A", "b": "B"}, [("a", "b")])
        assert choose_algorithm(q, frag) == "dGPMd"
        assert run_auto(q, frag).relation == simulation(q, g)


class TestImpossibilityAudit:
    def test_rounds_grow_with_n_at_constant_fm(self):
        points = audit_parallel_time([4, 8, 16, 32])
        assert all(p.correct for p in points)
        fm_sizes = {p.fm_size for p in points}
        assert len(fm_sizes) == 1  # |Fm| constant across the family
        rounds = [p.rounds for p in points]
        assert rounds == sorted(rounds)
        assert rounds[-1] >= rounds[0] + 8  # genuine growth, not noise

    def test_ds_grows_with_n_at_two_fragments(self):
        points = audit_data_shipment([8, 16, 32, 64])
        assert all(p.correct for p in points)
        assert all(p.n_fragments == 2 for p in points)
        assert points[-1].ds_bytes > 2 * points[0].ds_bytes

    def test_closed_cycle_family_also_correct(self):
        points = audit_parallel_time([4, 8], close_cycle=True)
        assert all(p.correct for p in points)
