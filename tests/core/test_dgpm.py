"""Tests for algorithm dGPM (Theorem 2)."""

import pytest

from repro.core import DgpmConfig, run_dgpm
from repro.graph.digraph import DiGraph
from repro.graph.examples import example8_graph, figure1, figure1_fragmentation
from repro.graph.generators import random_labeled_graph, web_graph
from repro.graph.pattern import Pattern
from repro.partition import balanced_bfs_partition, random_partition
from repro.runtime.messages import MessageKind
from repro.simulation import simulation
from tests.conftest import random_instance

ALL_CONFIGS = [
    DgpmConfig(),
    DgpmConfig(incremental=False),
    DgpmConfig(enable_push=False),
    DgpmConfig().without_optimizations(),
]


class TestCorrectness:
    @pytest.mark.parametrize("config", ALL_CONFIGS, ids=["full", "no-incr", "no-push", "nopt"])
    def test_figure1(self, config):
        q, g, frag = figure1()
        result = run_dgpm(q, frag, config)
        assert result.relation == simulation(q, g)
        assert result.is_match

    @pytest.mark.parametrize("config", ALL_CONFIGS, ids=["full", "no-incr", "no-push", "nopt"])
    def test_example8_no_match(self, config):
        q, _, _ = figure1()
        g = example8_graph()
        frag = figure1_fragmentation(g)
        result = run_dgpm(q, frag, config)
        assert not result.is_match
        assert result.relation == simulation(q, g)

    @pytest.mark.parametrize("seed", range(40))
    def test_random_instances_match_oracle(self, seed):
        graph, pattern = random_instance(seed)
        n_frag = 2 + seed % 4
        if graph.n_nodes < n_frag:
            return
        frag = random_partition(graph, n_frag, seed=seed)
        result = run_dgpm(pattern, frag)
        assert result.relation == simulation(pattern, graph)

    @pytest.mark.parametrize("seed", range(40, 60))
    def test_all_configs_agree(self, seed):
        graph, pattern = random_instance(seed)
        if graph.n_nodes < 3:
            return
        frag = random_partition(graph, 3, seed=seed)
        results = [run_dgpm(pattern, frag, c).relation for c in ALL_CONFIGS]
        assert all(r == results[0] for r in results)

    def test_single_fragment_degenerates_to_central(self):
        graph, pattern = random_instance(7)
        frag = random_partition(graph, 1, seed=0)
        result = run_dgpm(pattern, frag)
        assert result.relation == simulation(pattern, graph)
        assert result.metrics.n_messages == 0

    def test_boolean_only_mode(self):
        q, g, frag = figure1()
        result = run_dgpm(q, frag, DgpmConfig(boolean_only=True))
        assert result.is_match == simulation(q, g).is_match


class TestDataShipmentBound:
    """Theorem 2: DS is O(|Ef| |Vq|) -- by construction, but verify hard."""

    @pytest.mark.parametrize("seed", range(10))
    def test_var_messages_within_budget(self, seed):
        graph = random_labeled_graph(60, 240, n_labels=3, seed=seed)
        frag = random_partition(graph, 4, seed=seed)
        _, pattern = random_instance(seed)
        result = run_dgpm(pattern, frag, DgpmConfig(enable_push=False))
        budget = frag.n_crossing_edges * pattern.n_nodes
        assert result.metrics.n_messages <= budget

    def test_each_variable_shipped_at_most_once_per_watcher(self):
        graph = random_labeled_graph(80, 400, n_labels=2, seed=3)
        frag = random_partition(graph, 5, seed=3)
        pattern = Pattern({"a": "L0", "b": "L1"}, [("a", "b"), ("b", "a")])
        result = run_dgpm(pattern, frag, DgpmConfig(enable_push=False))
        # messages are (var, watcher) pairs; uniqueness => count bounded by
        # sum over in-nodes of watcher counts
        assert result.metrics.n_messages <= sum(
            len(w) for i in range(frag.n_fragments)
            for w in [frag[i].in_nodes]
        ) * pattern.n_nodes * frag.n_fragments

    def test_ds_breakdown_separates_result_collection(self):
        q, _, frag = figure1()
        result = run_dgpm(q, frag)
        breakdown = result.metrics.ds_breakdown
        assert MessageKind.RESULT.value in breakdown
        assert MessageKind.QUERY.value in breakdown
        # headline DS excludes query broadcast and result collection
        data = sum(
            v for k, v in breakdown.items()
            if k not in ("query", "control", "result")
        )
        assert result.metrics.ds_bytes == data


class TestTermination:
    def test_monotone_rounds_bound(self):
        # each communication round falsifies >= 1 boundary variable, so
        # rounds <= |Vf| * |Vq| + constant
        graph = random_labeled_graph(50, 200, n_labels=2, seed=5)
        frag = random_partition(graph, 5, seed=5)
        pattern = Pattern({"a": "L0", "b": "L1"}, [("a", "b"), ("b", "a")])
        result = run_dgpm(pattern, frag, DgpmConfig(enable_push=False))
        assert result.metrics.n_rounds <= frag.n_virtual_nodes * pattern.n_nodes + 3


class TestOptimizations:
    def test_push_reduces_rounds_on_chain(self):
        from repro.graph.examples import figure2

        q, g, frag = figure2(24, close_cycle=False)
        with_push = run_dgpm(q, frag, DgpmConfig(enable_push=True))
        without = run_dgpm(q, frag, DgpmConfig(enable_push=False))
        assert with_push.relation == without.relation
        assert with_push.metrics.n_rounds < without.metrics.n_rounds
        assert with_push.metrics.extras["pushes"] > 0

    def test_push_threshold_gates_pushing(self):
        q, _, frag = figure1()
        never = run_dgpm(q, frag, DgpmConfig(push_threshold=float("inf")))
        assert never.metrics.extras["pushes"] == 0

    def test_incremental_and_scratch_ship_same_updates(self):
        graph = random_labeled_graph(60, 240, n_labels=2, seed=9)
        frag = random_partition(graph, 4, seed=9)
        pattern = Pattern({"a": "L0", "b": "L1"}, [("a", "b"), ("b", "a")])
        inc = run_dgpm(pattern, frag, DgpmConfig(enable_push=False))
        nopt = run_dgpm(pattern, frag, DgpmConfig().without_optimizations())
        assert inc.metrics.n_messages == nopt.metrics.n_messages


class TestMetrics:
    def test_pt_positive_and_rounds_counted(self):
        q, _, frag = figure1()
        result = run_dgpm(q, frag)
        assert result.metrics.pt_seconds > 0
        assert result.metrics.wall_seconds > 0
        assert result.metrics.n_rounds >= 1
        assert result.metrics.algorithm == "dGPM"

    def test_nopt_label(self):
        q, _, frag = figure1()
        result = run_dgpm(q, frag, DgpmConfig().without_optimizations())
        assert result.metrics.algorithm == "dGPMNOpt"
