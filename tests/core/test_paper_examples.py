"""End-to-end pinning of every numbered example in the paper (Sections 4-5).

Each test cites the example it reproduces.  These are the strongest fidelity
anchors of the reproduction: exact equations, exact message counts, exact
match sets.
"""

from repro.boolean.expr import Var
from repro.core import DgpmConfig, run_dgpm, run_dgpmd
from repro.core.depgraph import DependencyGraphs
from repro.core.state import LocalEvalState
from repro.graph.examples import (
    FIGURE1_EXPECTED_MATCHES,
    example8_graph,
    figure1,
    figure1_fragmentation,
    figure5,
)
from repro.simulation import simulation


class TestExample2:
    """The unique maximum match of Figure 1."""

    def test_match_sets(self):
        q, g, frag = figure1()
        result = run_dgpm(q, frag)
        assert result.relation.as_dict() == FIGURE1_EXPECTED_MATCHES


class TestExample5:
    """Local dependency graph of site S3."""

    def test_dependency_edges_into_s3(self):
        _, _, frag = figure1()
        deps = DependencyGraphs(frag)
        edges = {(src, dst): nodes for src, dst, nodes in deps.edges(2)}
        # (S1, S3) annotated with f4: S1 holds f4 as virtual, S3 owns it
        assert edges[(0, 2)] == frozenset({"f4"})
        # (S2, S3) annotated with {sp3, yf3}
        assert edges[(1, 2)] == frozenset({"sp3", "yf3"})


class TestExample6:
    """The in-node Boolean equations after the first partial evaluation."""

    def test_f1_equations(self):
        q, _, frag = figure1()
        state = LocalEvalState(frag[0], q)
        state.run_initial()
        eqs = state.in_node_equations()
        assert eqs[("YF", "yf1")] == Var(("F", "f2"))
        assert eqs[("SP", "sp1")] == Var(("YF", "yf2")) | Var(("F", "f2"))

    def test_f2_equations(self):
        q, _, frag = figure1()
        state = LocalEvalState(frag[1], q)
        state.run_initial()
        eqs = state.in_node_equations()
        assert eqs[("F", "f2")] == Var(("SP", "sp1"))
        assert eqs[("YF", "yf2")] == Var(("YF", "yf3"))

    def test_f3_equations(self):
        q, _, frag = figure1()
        state = LocalEvalState(frag[2], q)
        state.run_initial()
        eqs = state.in_node_equations()
        assert eqs[("F", "f4")] == Var(("YF", "yf1"))
        assert eqs[("SP", "sp3")] == Var(("YF", "yf1"))
        assert eqs[("YF", "yf3")] == Var(("YF", "yf1"))

    def test_yb2_reduces_to_yf3_only(self):
        # "Although X(YB,yb2) = X(YF,yf2) AND X(F,f3), lEval finds that
        #  X(YB,yb2) can be defined by using X(YF,yf3) only."
        q, _, frag = figure1()
        state = LocalEvalState(frag[1], q)
        state.run_initial()
        system = state.equation_system()
        reduced = system.reduced_system(keep=[("YB", "yb2")]).as_dict()
        assert reduced[("YB", "yb2")] == Var(("YF", "yf3"))

    def test_unreduced_yb2_uses_yf2_and_f3(self):
        q, _, frag = figure1()
        state = LocalEvalState(frag[1], q)
        state.run_initial()
        raw = state.equation_system().equation(("YB", "yb2"))
        assert raw == (Var(("YF", "yf2")) & Var(("F", "f3")))


class TestExample7:
    """Phase 2 converges with no falsifications: everything stays true."""

    def test_no_var_updates_needed(self):
        q, _, frag = figure1()
        result = run_dgpm(q, frag, DgpmConfig(enable_push=False))
        assert result.metrics.n_messages == 0
        assert result.relation.as_dict() == FIGURE1_EXPECTED_MATCHES


class TestExample8:
    """Removing (f2, sp1): X(F,f2) goes false at S2 and cascades."""

    def test_falsification_starts_at_s2(self):
        q, _, _ = figure1()
        g = example8_graph()
        frag = figure1_fragmentation(g)
        state = LocalEvalState(frag[1], q)
        falsified = state.run_initial()
        assert ("F", "f2") in falsified

    def test_cascade_empties_the_match(self):
        q, _, _ = figure1()
        g = example8_graph()
        frag = figure1_fragmentation(g)
        result = run_dgpm(q, frag)
        assert not result.is_match
        assert result.relation == simulation(q, g)


class TestExamples9And10:
    """Figure 5 message counts: 12 for dGPM, 6 for dGPMd."""

    def test_dgpm_sends_12(self):
        q, _, frag = figure5()
        result = run_dgpm(q, frag, DgpmConfig(enable_push=False))
        assert result.metrics.n_messages == 12

    def test_dgpmd_sends_6(self):
        q, _, frag = figure5()
        result = run_dgpmd(q, frag)
        assert result.metrics.n_messages == 6

    def test_rank_zero_ships_nothing(self):
        # "As no variable is associated with FB (r = 0), no data shipment
        # is incurred" -- the first batch leaves at rank 1.
        q, _, frag = figure5()
        result = run_dgpmd(q, frag)
        # 6 messages over ranks 1..3 and none at rank 0 or 4:
        assert result.metrics.n_rounds <= 5
