"""Property-based cross-engine parity: dict and array answers are identical.

The array engine re-implements local evaluation over CSR arrays; nothing
about the protocol's answer may depend on that choice.  Hypothesis generates
graphs, real partitioner outputs (all three general partitioners), patterns,
and optimization configs; every served algorithm's array answer is compared
to its dict answer and to the centralized oracle -- including across a
mutation stream, which exercises the compiled-CSR cache's per-fragment
invalidation inside a resident session.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import DgpmConfig
from repro.core.dgpm import execute_dgpm
from repro.core.dgpmd import execute_dgpmd
from repro.core.dgpmt import execute_dgpmt
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_tree
from repro.graph.pattern import Pattern
from repro.partition.partitioners import (
    balanced_bfs_partition,
    hash_partition,
    random_partition,
    tree_partition,
)
from repro.session import SimulationSession
from repro.simulation import simulation

pytest.importorskip("numpy")

LABELS = "ABC"
PARTITIONERS = (hash_partition, random_partition, balanced_bfs_partition)


def _graph(draw):
    n = draw(st.integers(min_value=2, max_value=14))
    labels = draw(st.lists(st.sampled_from(LABELS), min_size=n, max_size=n))
    graph = DiGraph({i: labels[i] for i in range(n)})
    for _ in range(draw(st.integers(min_value=0, max_value=3 * n))):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
    return graph


def _pattern(draw, max_nodes=3):
    qn = draw(st.integers(min_value=1, max_value=max_nodes))
    qlabels = draw(st.lists(st.sampled_from(LABELS), min_size=qn, max_size=qn))
    qedges = []
    for _ in range(draw(st.integers(min_value=0, max_value=2 * qn))):
        a = draw(st.integers(min_value=0, max_value=qn - 1))
        b = draw(st.integers(min_value=0, max_value=qn - 1))
        qedges.append((a, b))
    return Pattern({i: qlabels[i] for i in range(qn)}, qedges)


@st.composite
def engine_instances(draw):
    graph = _graph(draw)
    partitioner = draw(st.sampled_from(PARTITIONERS))
    n_frag = draw(st.integers(min_value=1, max_value=min(4, graph.n_nodes)))
    fragmentation = partitioner(
        graph, n_frag, seed=draw(st.integers(min_value=0, max_value=3))
    )
    return graph, fragmentation, _pattern(draw)


@settings(max_examples=50, deadline=None)
@given(engine_instances(), st.booleans(), st.booleans())
def test_dgpm_cross_engine_parity(instance, push, incremental):
    graph, fragmentation, pattern = instance
    config = DgpmConfig(enable_push=push, incremental=incremental)
    oracle = simulation(pattern, graph)
    assert execute_dgpm(pattern, fragmentation, config, engine="dict").relation == oracle
    assert execute_dgpm(pattern, fragmentation, config, engine="array").relation == oracle


@settings(max_examples=30, deadline=None)
@given(engine_instances())
def test_dgpmd_cross_engine_parity_on_dag_queries(instance):
    graph, fragmentation, pattern = instance
    if not pattern.is_dag():
        return
    oracle = simulation(pattern, graph)
    assert execute_dgpmd(pattern, fragmentation, engine="dict").relation == oracle
    assert execute_dgpmd(pattern, fragmentation, engine="array").relation == oracle


@st.composite
def tree_instances(draw):
    n = draw(st.integers(min_value=2, max_value=16))
    tree = random_tree(n, n_labels=3, seed=draw(st.integers(min_value=0, max_value=50)))
    n_frag = draw(st.integers(min_value=1, max_value=min(4, n)))
    fragmentation = tree_partition(
        tree, n_frag, seed=draw(st.integers(min_value=0, max_value=3))
    )
    qn = draw(st.integers(min_value=1, max_value=3))
    qlabels = draw(st.lists(st.sampled_from("L0 L1 L2".split()), min_size=qn, max_size=qn))
    qedges = [
        (draw(st.integers(min_value=0, max_value=i - 1)), i) for i in range(1, qn)
    ]
    return tree, fragmentation, Pattern({i: qlabels[i] for i in range(qn)}, qedges)


@settings(max_examples=30, deadline=None)
@given(tree_instances())
def test_dgpmt_cross_engine_parity(instance):
    tree, fragmentation, pattern = instance
    oracle = simulation(pattern, tree)
    assert execute_dgpmt(pattern, fragmentation, engine="dict").relation == oracle
    assert execute_dgpmt(pattern, fragmentation, engine="array").relation == oracle


@st.composite
def mutation_instances(draw):
    graph = _graph(draw)
    partitioner = draw(st.sampled_from(PARTITIONERS))
    n_frag = draw(st.integers(min_value=1, max_value=min(4, graph.n_nodes)))
    fragmentation = partitioner(
        graph, n_frag, seed=draw(st.integers(min_value=0, max_value=3))
    )
    n = graph.n_nodes
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(("delete", "insert")),
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=6,
        )
    )
    return fragmentation, _pattern(draw), ops


@settings(max_examples=25, deadline=None)
@given(mutation_instances())
def test_array_session_stays_exact_across_mutation_stream(instance):
    """A resident array-engine session, mutated through the session API.

    The compiled-CSR cache is *kept* across mutations and must recompile the
    touched fragments on the next query -- every answer is re-checked against
    the centralized oracle on the current graph.
    """
    fragmentation, pattern, ops = instance
    session = SimulationSession(fragmentation, cache_size=0, engine="array")
    graph = session.fragmentation.graph
    assert session.run(pattern, algorithm="dgpm").relation == simulation(pattern, graph)
    compiled = session.compiled_fragments()
    for kind, u, v in ops:
        if kind == "delete" and graph.has_edge(u, v):
            session.delete_edge(u, v)
        elif kind == "insert" and u != v and not graph.has_edge(u, v):
            session.insert_edge(u, v)
        else:
            continue
        assert session.run(pattern, algorithm="dgpm").relation == simulation(
            pattern, graph
        )
    # mutations must never blow the compiled cache away wholesale
    assert session.compiled_fragments() is compiled
