"""Network ingress: localhost-TCP serving vs in-process (perf gate).

The ROADMAP's "async/socket ingress" landed; this gate keeps it honest.
The same mixed stream is served by the thread backend directly and through
the asyncio TCP front door (4 blocking client connections, round-robin),
each on its own freshly-built server, so the measured delta is pure ingress
overhead -- framing, pickling, syscalls, event loop.

Gate: localhost TCP must sustain **>= 0.5x** the in-process throughput on
the |F|=16 mixed stream, parity-checked query-by-query against a serial
session.  (The ingress adds per-request work but also overlaps requests
across connections; 0.5x is far below what a healthy build delivers and
catches "the event loop serialized everything" class regressions.)

Runs two ways:

* ``pytest benchmarks/ -o python_files='bench_*.py'`` -- full sweep, recorded
  next to the Fig.-6 series;
* ``python benchmarks/bench_net.py [--smoke]`` -- standalone, used by CI
  (``--smoke`` shrinks sizes so a regression fails loudly in seconds).
"""

from pathlib import Path

import pytest

from repro.bench.net import net_stream_series
from repro.bench.report import record_report
from repro.bench.smoke import record_smoke

RESULTS = Path(__file__).parent / "results"


@pytest.fixture(scope="module")
def series():
    s = net_stream_series(fragment_counts=(16,))
    record_report("net_stream", s.render(), RESULTS)
    return s


def test_net_parity(series):
    for p in series.points:
        assert p.parity, f"TCP answers diverged at |F|={p.n_fragments}"


def test_tcp_throughput_gate(series):
    p = max(series.points, key=lambda p: p.n_fragments)
    assert p.tcp_ratio >= 0.5, (
        f"TCP ingress overhead too high: {p.tcp_ratio:.2f}x < 0.5x "
        f"({p.inproc_qps:.1f} q/s in-process vs {p.tcp_qps:.1f} q/s over TCP)"
    )


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="tiny sizes for CI")
    parser.add_argument("--fragments", type=int, nargs="+", default=[16])
    parser.add_argument("--nodes", type=int, default=3000)
    parser.add_argument("--edges", type=int, default=15000)
    parser.add_argument("--distinct", type=int, default=12)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--workers", type=int, default=4)
    args = parser.parse_args(argv)

    # CI smoke runs on noisy shared runners, and the smaller per-query
    # compute makes wire overhead proportionally larger: a lenient 0.4x
    # still catches "the ingress serialized/broke"; full size keeps 0.5x.
    threshold = 0.5
    if args.smoke:
        args.nodes, args.edges = 1200, 6000
        args.distinct, args.repeat = 8, 3
        threshold = 0.4

    series = net_stream_series(
        fragment_counts=tuple(args.fragments),
        n_nodes=args.nodes,
        n_edges=args.edges,
        n_distinct=args.distinct,
        repeat=args.repeat,
        n_clients=args.clients,
        n_workers=args.workers,
    )
    print(series.render())
    failures = []
    if not all(p.parity for p in series.points):
        failures.append("answer parity violated")
    p_wide = max(series.points, key=lambda p: p.n_fragments)
    if p_wide.tcp_ratio < threshold:
        failures.append(
            f"TCP/in-process ratio at |F|={p_wide.n_fragments} is "
            f"{p_wide.tcp_ratio:.2f}x (< {threshold}x)"
        )
    record_smoke(
        "net",
        {
            "smoke": args.smoke,
            "ok": not failures,
            "threshold": threshold,
            "points": [
                {
                    "n_fragments": p.n_fragments,
                    "n_queries": p.n_queries,
                    "n_clients": p.n_clients,
                    "inproc_qps": p.inproc_qps,
                    "tcp_qps": p.tcp_qps,
                    "tcp_ratio": p.tcp_ratio,
                    "parity": p.parity,
                }
                for p in series.points
            ],
        },
    )
    if failures:
        print("FAIL:", "; ".join(failures))
        return 1
    print(f"ok: TCP ingress parity holds, throughput >= {threshold}x in-process")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
