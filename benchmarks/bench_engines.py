"""Array engine vs dict engine: the columnar-evaluation perf gate.

The array engine (``engine="array"``) recompiles each fragment into CSR
arrays and replaces the dict engine's per-pair Python loops with numpy
kernels.  Its advantage *grows with scale* (numpy call overhead amortizes
over wider fragments), so -- unlike the other smokes, which shrink sizes --
the gate here runs at web-graph scale: at 96k nodes / 480k edges / |F|=16
the array engine must serve the mixed query stream at >= 5x the dict
engine's q/s, with every answer identical.

Runs two ways:

* ``pytest benchmarks/ -o python_files='bench_*.py'`` -- records the
  size-sweep table next to the other series (small-to-large; the pytest
  assertions check parity everywhere and the gate at the large end);
* ``python benchmarks/bench_engines.py [--smoke]`` -- standalone, used by
  CI; ``--smoke`` keeps the gate-scale graph but trims repeats so the step
  stays in tens of seconds.
"""

from pathlib import Path

import pytest

from repro.bench.engines import (
    DEFAULT_SIZES,
    GATE_EDGES,
    GATE_NODES,
    GATE_SPEEDUP,
    engine_series,
)
from repro.bench.report import record_report
from repro.bench.smoke import record_smoke

RESULTS = Path(__file__).parent / "results"


@pytest.fixture(scope="module")
def series():
    s = engine_series()
    record_report("engines", s.render(), RESULTS)
    return s


def test_engine_parity(series):
    for p in series.points:
        assert p.parity, f"engines disagreed at {p.n_nodes} nodes"


def test_array_engine_wins_at_scale(series):
    p = max(series.points, key=lambda p: p.n_nodes)
    assert p.speedup >= GATE_SPEEDUP, (
        f"array engine must clear {GATE_SPEEDUP}x at {p.n_nodes} nodes: "
        f"measured {p.speedup:.2f}x "
        f"(dict {p.dict_qps:.2f} q/s vs array {p.array_qps:.2f} q/s)"
    )


def test_compile_cost_amortizes(series):
    # Compiling all |F| fragments must cost less than a handful of dict
    # queries -- otherwise the engine could never win on short streams.
    for p in series.points:
        assert p.compile_seconds < 5.0 / max(p.dict_qps, 1e-9)


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="gate point only, fewer repeats"
    )
    parser.add_argument("--repeat", type=int, default=3)
    args = parser.parse_args(argv)

    if args.smoke:
        # The gate needs scale, so smoke keeps the full-size graph and
        # saves time on repeats instead.
        sizes = [(GATE_NODES, GATE_EDGES)]
        repeat = 2
    else:
        sizes = list(DEFAULT_SIZES)
        repeat = args.repeat

    series = engine_series(sizes=sizes, repeat=repeat)
    print(series.render())

    failures = []
    if not all(p.parity for p in series.points):
        failures.append("engine answers diverged")
    gate = max(series.points, key=lambda p: p.n_nodes)
    if gate.n_nodes >= GATE_NODES and gate.speedup < GATE_SPEEDUP:
        failures.append(
            f"array speedup at {gate.n_nodes} nodes is {gate.speedup:.2f}x "
            f"(< {GATE_SPEEDUP}x)"
        )
    record_smoke(
        "engines",
        {
            "smoke": args.smoke,
            "ok": not failures,
            "threshold": GATE_SPEEDUP,
            "points": [
                {
                    "n_nodes": p.n_nodes,
                    "n_edges": p.n_edges,
                    "n_fragments": p.n_fragments,
                    "n_queries": p.n_queries,
                    "dict_qps": p.dict_qps,
                    "array_qps": p.array_qps,
                    "speedup": p.speedup,
                    "compile_seconds": p.compile_seconds,
                    "compilations": p.compilations,
                    "parity": p.parity,
                }
                for p in series.points
            ],
        },
    )
    if failures:
        print("FAIL:", "; ".join(failures))
        return 1
    print(
        f"ok: array engine {gate.speedup:.2f}x over dict at "
        f"{gate.n_nodes} nodes, answers identical"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
