"""Cut quality and online repartitioning: the partition-performance gates.

The paper's cost model (Section 6) charges message volume and response
time to the boundary ``|Fi.O| + |Fi.I|``, i.e. to crossing edges; this
benchmark enforces that our cut-minimizing partitioner actually buys the
reduction, and that buying it *at runtime* pays for itself on a live
server.  Two gates:

* **Cut gate** -- on the power-law ``web_graph`` workload at ``|F| = 16``,
  ``min_cut_partition`` must leave at most ``0.6x`` the crossing edges of
  ``hash_partition``.

* **Rebalance gate** -- drive a skewed hot-region stream (edge churn plus
  queries, all concentrated on the preferential-attachment hub region)
  through a sharded server fragmented by ``hash_partition``, call
  ``rebalance()`` (traffic-weighted, from the live counters the stream
  itself populated), replay the stream, and require ``>= 1.2x`` ops/s.
  The win is structural, not parallelism: a lower cut shrinks mutation
  cascades, watcher fan-out, and shipped boundary state, so it holds on a
  single CPU.  Answers are parity-checked against a from-scratch
  simulation after the stream (deletes are paired with re-inserts, so the
  graph ends unchanged).

Runs two ways:

* ``pytest benchmarks/ -o python_files='bench_*.py'`` -- recorded sweep;
* ``python benchmarks/bench_partition.py [--smoke]`` -- standalone CI gate.
"""

import time
from pathlib import Path
from typing import Dict, List

import pytest

from repro import ConcurrentSessionServer, hash_partition, simulation, web_graph
from repro.bench.report import record_report
from repro.bench.smoke import record_smoke
from repro.bench.workloads import cyclic_pattern
from repro.partition.metrics import partition_stats
from repro.partition.partitioners import min_cut_partition

RESULTS = Path(__file__).parent / "results"

CUT_RATIO_GATE = 0.6
REBALANCE_SPEEDUP_GATE = 1.2


def partition_run(
    n_nodes: int = 4000,
    n_edges: int = 20000,
    n_fragments: int = 16,
    n_workers: int = 2,
    n_rounds: int = 30,
    seed: int = 17,
) -> Dict[str, object]:
    """Measure both gates on one generated instance; return the facts."""
    graph = web_graph(n_nodes, n_edges, n_labels=5, seed=seed)
    hash_frag = hash_partition(graph, n_fragments, seed=seed)
    min_frag = min_cut_partition(graph, n_fragments, seed=seed)
    cut_ratio = min_frag.n_crossing_edges / hash_frag.n_crossing_edges

    # The skewed stream: web_graph grows by preferential attachment, so low
    # node ids are the hubs -- edge churn inside that region concentrates
    # traffic on whichever fragments happen to own it.
    hub = max(2, n_nodes // 8)
    hot_edges = [(u, v) for u, v in graph.edges() if u < hub and v < hub]
    if len(hot_edges) < 2 * n_rounds:
        raise ValueError("instance too small for the requested stream length")
    queries = [cyclic_pattern(graph, 3, 4, seed=s) for s in range(6)]

    def drive(server: ConcurrentSessionServer, edges: List) -> float:
        """Ops/s over one pass of the churn+query stream."""
        t0 = time.perf_counter()
        n_ops = 0
        for i, (u, v) in enumerate(edges):
            server.delete_edge(u, v)
            server.insert_edge(u, v)
            n_ops += 2
            if i % 5 == 0:
                server.run(queries[i % len(queries)], algorithm="dgpm")
                n_ops += 1
        return n_ops / (time.perf_counter() - t0)

    with ConcurrentSessionServer(
        hash_frag, backend="sharded", n_workers=n_workers
    ) as server:
        server.run(queries[0], algorithm="dgpm")  # warm labels/deps once
        ops_before = drive(server, hot_edges[:n_rounds])
        outcome = server.rebalance()  # traffic-weighted from live counters
        ops_after = drive(server, hot_edges[n_rounds : 2 * n_rounds])
        parity = all(
            server.run(q, algorithm="dgpm").relation == simulation(q, graph)
            for q in queries
        )

    return {
        "n_nodes": n_nodes,
        "n_edges": n_edges,
        "n_fragments": n_fragments,
        "n_workers": n_workers,
        "n_rounds": n_rounds,
        "cut_hash": hash_frag.n_crossing_edges,
        "cut_min": min_frag.n_crossing_edges,
        "cut_ratio": cut_ratio,
        "boundary_hash": partition_stats(hash_frag).total_boundary,
        "boundary_min": partition_stats(min_frag).total_boundary,
        "rebalance_cut_before": outcome.cut_before,
        "rebalance_cut_after": outcome.cut_after,
        "rebalance_moved": outcome.moved,
        "rebalance_wall_seconds": outcome.wall_seconds,
        "ops_before": ops_before,
        "ops_after": ops_after,
        "speedup": ops_after / ops_before,
        "parity": parity,
    }


def render(run: Dict[str, object]) -> str:
    return "\n".join(
        [
            "cut-minimizing partitioner + online rebalance "
            f"(|F|={run['n_fragments']}, {run['n_nodes']} nodes / "
            f"{run['n_edges']} edges, {run['n_workers']} workers)",
            f"  crossing edges: hash {run['cut_hash']} -> "
            f"min_cut {run['cut_min']} "
            f"(ratio {run['cut_ratio']:.3f}, gate <= {CUT_RATIO_GATE})",
            f"  total boundary: hash {run['boundary_hash']} -> "
            f"min_cut {run['boundary_min']}",
            f"  rebalance(): cut {run['rebalance_cut_before']} -> "
            f"{run['rebalance_cut_after']}, moved {run['rebalance_moved']} "
            f"nodes in {run['rebalance_wall_seconds']:.2f}s",
            f"  skewed stream: {run['ops_before']:.1f} -> "
            f"{run['ops_after']:.1f} ops/s "
            f"(speedup {run['speedup']:.2f}x, gate >= "
            f"{REBALANCE_SPEEDUP_GATE})",
            f"  parity:       {'ok' if run['parity'] else 'VIOLATED'}",
        ]
    )


@pytest.fixture(scope="module")
def bench_run():
    run = partition_run()
    record_report("partition", render(run), RESULTS)
    return run


def test_partition_parity(bench_run):
    assert bench_run["parity"], "answers diverged from the oracle"


def test_min_cut_ratio_gate(bench_run):
    assert bench_run["cut_ratio"] <= CUT_RATIO_GATE, (
        f"min_cut must cut crossing edges to <= {CUT_RATIO_GATE}x hash: "
        f"got {bench_run['cut_ratio']:.3f} "
        f"({bench_run['cut_min']} vs {bench_run['cut_hash']})"
    )


def test_rebalance_speedup_gate(bench_run):
    assert bench_run["speedup"] >= REBALANCE_SPEEDUP_GATE, (
        f"traffic-weighted rebalance() must speed the skewed stream up "
        f">= {REBALANCE_SPEEDUP_GATE}x: got {bench_run['speedup']:.2f}x "
        f"({bench_run['ops_before']:.1f} -> {bench_run['ops_after']:.1f} ops/s)"
    )


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument("--nodes", type=int, default=6000)
    parser.add_argument("--edges", type=int, default=30000)
    parser.add_argument("--fragments", type=int, default=16)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--rounds", type=int, default=40)
    args = parser.parse_args(argv)
    if args.smoke:
        args.nodes, args.edges, args.rounds = 4000, 20000, 30

    run = partition_run(
        n_nodes=args.nodes,
        n_edges=args.edges,
        n_fragments=args.fragments,
        n_workers=args.workers,
        n_rounds=args.rounds,
    )
    print(render(run))
    failures: List[str] = []
    if not run["parity"]:
        failures.append("answer parity violated")
    if run["cut_ratio"] > CUT_RATIO_GATE:
        failures.append(
            f"cut ratio {run['cut_ratio']:.3f} > {CUT_RATIO_GATE}"
        )
    if run["speedup"] < REBALANCE_SPEEDUP_GATE:
        failures.append(
            f"rebalance speedup {run['speedup']:.2f}x < {REBALANCE_SPEEDUP_GATE}"
        )
    record_smoke(
        "partition",
        {
            "smoke": args.smoke,
            "ok": not failures,
            "cut_gate": CUT_RATIO_GATE,
            "speedup_gate": REBALANCE_SPEEDUP_GATE,
            **run,
        },
    )
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
