"""Figure 6(o)(p): dGPM vs the size of G at |F| = 20.

Paper claim (Theorem 2): dGPM's DS is a function of |Ef| and |Q| -- not of
|G|.  Following DESIGN.md §5 / EXPERIMENTS.md, the sweep uses graphs whose
boundary population stays fixed as |G| grows (fixed link window + fixed hub
set): dGPM's DS stays flat while disHHK's and dMes's keep growing with |G|,
and dGPM's PT tracks |Fm| ("the larger |Fm| is, the longer dGPM takes").
"""

from pathlib import Path

import pytest

from repro.bench import figures
from repro.bench.report import record_report
from repro.core import run_dgpm
from repro.graph.generators import contiguous_block_assignment
from repro.partition import fragment_graph

RESULTS = Path(__file__).parent / "results"


def _representative(n_nodes: int, n_edges: int):
    graph = figures.scalefree_boundary_graph(figures._n(n_nodes), figures._n(n_edges))
    frag = fragment_graph(graph, contiguous_block_assignment(graph, 20))
    query = figures._queries(graph, (5, 10), seeds=1)[0]
    return query, frag


@pytest.fixture(scope="module")
def series():
    s = figures.fig6_op_synthetic_size()
    record_report("fig6_op", s.render(), RESULTS)
    return s


def test_fig6o_baseline_pt_tracks_graph_size(benchmark, series):
    dishhk = [p.pt_seconds["disHHK"] for p in series.points]
    assert dishhk[-1] > dishhk[0]  # ship-and-assemble pays for |G|
    def med(alg):
        return series.median("pt_seconds", alg)
    assert med("dGPM") < med("disHHK")
    assert med("dGPM") < med("dMes")
    query, frag = _representative(8000, 32000)
    benchmark.pedantic(run_dgpm, args=(query, frag), rounds=3, iterations=1)


def test_fig6p_dgpm_ds_not_a_function_of_g(benchmark, series):
    dgpm = [p.ds_kb["dGPM"] for p in series.points]
    dishhk = [p.ds_kb["disHHK"] for p in series.points]
    # dGPM: bounded by the (fixed) partition statistics -- flat-ish
    assert max(dgpm) <= 3 * max(min(dgpm), 0.01)
    # disHHK: a function of |G| -- must grow with the 4x size sweep
    assert dishhk[-1] > 2 * dishhk[0]
    query, frag = _representative(2000, 8000)
    benchmark.pedantic(run_dgpm, args=(query, frag), rounds=3, iterations=1)
