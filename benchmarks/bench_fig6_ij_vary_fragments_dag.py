"""Figure 6(i)(j): dGPMd vs |F| on the citation DAG at d = 4.

Paper shape: more processors => less dGPMd response time; at |F| = 20 the
paper reports dGPMd 4.7x / 12.5x / 15.8x faster than disHHK / dMes / Match,
with orders of magnitude less data.
"""

from pathlib import Path

import pytest

from repro.bench import figures
from repro.bench.report import record_report
from repro.core import run_dgpmd

RESULTS = Path(__file__).parent / "results"


@pytest.fixture(scope="module")
def series():
    s = figures.fig6_ij_vary_fragments_dag()
    record_report("fig6_ij", s.render(), RESULTS)
    return s


def test_fig6i_pt_decreases_with_fragments(benchmark, series):
    pts = [p.pt_seconds["dGPMd"] for p in series.points]
    assert min(pts[2:]) < pts[0]
    def med(alg):
        return series.median("pt_seconds", alg)
    assert med("dGPMd") < med("Match")
    assert med("dGPMd") < med("disHHK")
    assert med("dGPMd") < med("dMes")
    graph = figures.citation_graph()
    frag = figures.partitioned("citation", 20, 0.25)
    q = figures._dag_queries(graph, 4, seeds=1)[0]
    benchmark.pedantic(run_dgpmd, args=(q, frag), rounds=3, iterations=1)


def test_fig6j_ds_ordering(benchmark, series):
    for p in series.points:
        assert p.ds_kb["dGPMd"] < p.ds_kb["disHHK"]
        assert p.ds_kb["dGPMd"] < p.ds_kb["dMes"]
        assert p.ds_kb["dGPMd"] < p.ds_kb["Match"]
    graph = figures.citation_graph()
    frag = figures.partitioned("citation", 4, 0.25)
    q = figures._dag_queries(graph, 4, seeds=1)[0]
    benchmark.pedantic(run_dgpmd, args=(q, frag), rounds=3, iterations=1)
