"""Serving a mutating graph: in-place maintenance vs drop-everything.

The ROADMAP's incremental-maintenance scenario: the resident fragmentation
keeps serving hot queries while edges are deleted and re-inserted under it.
The session's mutation API patches the fragmentation, the watcher tables,
and the result cache in place (warm queries repaired through the affected
area only -- Section 4.2's ``O(|AFF|)`` claim at the serving layer);
the baseline drops every derived structure on every mutation
(``maintenance="invalidate"``) and pays full rebuild + re-evaluation on the
next query.

Gate: the maintained session must sustain >= 5x the ops/sec of the
drop-everything baseline on the mixed delete/insert/query stream at the
widest fragment count, with answers parity-checked between the modes and --
on a dedicated session -- against from-scratch centralized ``simulation``
after every mutation.

Runs two ways:

* ``pytest benchmarks/ -o python_files='bench_*.py'`` -- full sweep, recorded
  next to the Fig.-6 series;
* ``python benchmarks/bench_updates.py [--smoke]`` -- standalone, used by CI
  (``--smoke`` shrinks sizes so a regression fails loudly in seconds).
"""

from pathlib import Path

import pytest

from repro.bench.report import record_report
from repro.bench.stream import update_stream_series
from repro.bench.smoke import record_smoke

RESULTS = Path(__file__).parent / "results"


@pytest.fixture(scope="module")
def series():
    s = update_stream_series(fragment_counts=(4, 8))
    record_report("update_stream", s.render(), RESULTS)
    return s


def test_update_stream_parity(series):
    for p in series.points:
        assert p.parity, f"maintained answers diverged at |F|={p.n_fragments}"
        assert p.invalidations == 0, "maintenance must never fall back to drops"


def test_update_stream_speedup(series):
    p = max(series.points, key=lambda p: p.n_fragments)
    assert p.speedup >= 5.0, (
        f"in-place maintenance must beat drop-everything: {p.speedup:.2f}x < 5x "
        f"({p.invalidate_ops:.1f} ops/s vs {p.maintained_ops:.1f} ops/s)"
    )


def test_update_stream_repairs_not_evictions(series):
    for p in series.points:
        assert p.cache_repaired + p.cache_kept > 0, "stream never exercised maintenance"


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="tiny sizes for CI")
    parser.add_argument("--fragments", type=int, nargs="+", default=[4, 8])
    parser.add_argument("--nodes", type=int, default=2000)
    parser.add_argument("--edges", type=int, default=10000)
    parser.add_argument("--rounds", type=int, default=30)
    parser.add_argument("--hot", type=int, default=3)
    args = parser.parse_args(argv)

    # CI smoke runs on noisy shared runners: a lenient 2.5x still catches
    # "maintenance broke entirely"; the full-size run keeps the 5x bar.
    threshold = 5.0
    if args.smoke:
        args.nodes, args.edges = 600, 3000
        args.rounds, args.fragments = 16, [2, 8]
        threshold = 2.5

    series = update_stream_series(
        fragment_counts=tuple(args.fragments),
        n_nodes=args.nodes,
        n_edges=args.edges,
        n_rounds=args.rounds,
        n_hot=args.hot,
    )
    print(series.render())
    failures = []
    if not all(p.parity for p in series.points):
        failures.append("answer parity violated")
    if any(p.invalidations for p in series.points):
        failures.append("maintained session fell back to full invalidation")
    p_wide = max(series.points, key=lambda p: p.n_fragments)
    if p_wide.speedup < threshold:
        failures.append(
            f"speedup at |F|={p_wide.n_fragments} is {p_wide.speedup:.2f}x "
            f"(< {threshold}x)"
        )
    record_smoke(
        "updates",
        {
            "smoke": args.smoke,
            "ok": not failures,
            "threshold": threshold,
            "points": [
                {
                    "n_fragments": p.n_fragments,
                    "n_ops": p.n_ops,
                    "maintained_ops_per_sec": p.maintained_ops,
                    "invalidate_ops_per_sec": p.invalidate_ops,
                    "speedup": p.speedup,
                    "parity": p.parity,
                    "invalidations": p.invalidations,
                }
                for p in series.points
            ],
        },
    )
    if failures:
        print("FAIL:", "; ".join(failures))
        return 1
    print("ok: in-place maintenance beats drop-everything, answers oracle-exact")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
