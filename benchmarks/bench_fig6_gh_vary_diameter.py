"""Figure 6(g)(h): dGPMd on the citation DAG, sweeping query diameter d.

Paper shape: dGPMd's PT grows with d (one message round per rank) but its
data shipment does NOT grow with d; dGPMd beats Match, disHHK and dMes at
every d.
"""

from pathlib import Path

import pytest

from repro.bench import figures
from repro.bench.report import record_report
from repro.core import run_dgpmd

RESULTS = Path(__file__).parent / "results"


@pytest.fixture(scope="module")
def series():
    s = figures.fig6_gh_vary_diameter()
    record_report("fig6_gh", s.render(), RESULTS)
    return s


def test_fig6g_dgpmd_fastest_at_every_d(benchmark, series):
    def med(alg):
        return series.median("pt_seconds", alg)
    assert med("dGPMd") < med("Match")
    assert med("dGPMd") < med("disHHK")
    assert med("dGPMd") < med("dMes")
    # rounds track d: deeper queries need more (batched) rounds
    assert series.points[-1].n_rounds["dGPMd"] > series.points[0].n_rounds["dGPMd"]
    graph = figures.citation_graph()
    frag = figures.partitioned("citation", 8, 0.25)
    q = figures._dag_queries(graph, 4, seeds=1)[0]
    benchmark.pedantic(run_dgpmd, args=(q, frag), rounds=3, iterations=1)


def test_fig6h_ds_does_not_grow_with_d(benchmark, series):
    ds = [p.ds_kb["dGPMd"] for p in series.points]
    # Paper: "dGPMd takes more time when d increases, but its data shipment
    # does not increase."  Our query sets are resampled per d and shallow
    # (d=2) samples are intrinsically smaller, so assert the plateau over
    # d >= 4: DS flattens while PT keeps climbing.
    plateau = ds[2:]
    assert max(plateau) <= 2 * min(plateau)
    for p in series.points:
        assert p.ds_kb["dGPMd"] < p.ds_kb["disHHK"]
        assert p.ds_kb["dGPMd"] < p.ds_kb["dMes"]
    graph = figures.citation_graph()
    frag = figures.partitioned("citation", 8, 0.25)
    q = figures._dag_queries(graph, 8, seeds=1)[0]
    benchmark.pedantic(run_dgpmd, args=(q, frag), rounds=3, iterations=1)
