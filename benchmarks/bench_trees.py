"""Section 5.2 / Corollary 4: dGPMt on distributed trees.

Paper shape: dGPMt is parallel scalable in data shipment -- DS is O(|Q||F|),
independent of |G| -- and needs exactly two coordinator round-trips.
"""

from pathlib import Path

import pytest

from repro.bench import figures
from repro.bench.report import record_report
from repro.bench.workloads import tree_pattern
from repro.core import run_dgpmt
from repro.graph.generators import random_tree
from repro.partition import tree_partition

RESULTS = Path(__file__).parent / "results"


@pytest.fixture(scope="module")
def series():
    s = figures.trees_series()
    record_report("trees", s.render(), RESULTS)
    return s


def test_dgpmt_ships_o_q_f(benchmark, series):
    # Corollary 4: DS ~ O(|Q||F|).  Across the 4..20 fragment sweep DS grows
    # about linearly in |F| and stays tiny in absolute terms (a 20k-node
    # tree ships ~1KB), and the two-trip protocol never exceeds 3 rounds.
    ds = [p.ds_kb["dGPMt"] for p in series.points]
    fs = [p.x for p in series.points]
    assert ds[-1] / ds[0] <= 2 * (fs[-1] / fs[0])
    assert max(ds) < 16.0
    for p in series.points:
        assert p.n_rounds["dGPMt"] <= 3
    tree = random_tree(figures._n(20000), n_labels=8, seed=7)
    frag = tree_partition(tree, 8, seed=3)
    q = tree_pattern(tree, 4, seed=41)
    benchmark.pedantic(run_dgpmt, args=(q, frag), rounds=3, iterations=1)


def test_ds_scales_with_fragments_not_graph(benchmark, series):
    # Corollary 4: DS ~ O(|Q||F|).  Growing |G| at fixed |F| leaves DS flat.
    shipments = []
    for n in (2000, 4000, 8000):
        tree = random_tree(figures._n(n), n_labels=8, seed=7)
        frag = tree_partition(tree, 8, seed=3)
        q = tree_pattern(tree, 4, seed=41)
        shipments.append(run_dgpmt(q, frag).metrics.ds_bytes)
    assert max(shipments) <= 3 * min(shipments)
    tree = random_tree(figures._n(4000), n_labels=8, seed=7)
    frag = tree_partition(tree, 8, seed=3)
    q = tree_pattern(tree, 4, seed=41)
    benchmark.pedantic(run_dgpmt, args=(q, frag), rounds=3, iterations=1)
