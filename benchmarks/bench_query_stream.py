"""Sustained query-stream serving: resident SimulationSession vs one-shot.

Not a paper figure -- this is the ROADMAP's serving scenario: the same
resident fragmentation answers a stream of repeated pattern queries.  The
session layer must beat per-query ``run_dgpm`` by >= 2x on the 16-fragment
mixed workload (setup amortized + LRU cache), with identical answers.

Runs two ways:

* ``pytest benchmarks/ -o python_files='bench_*.py'`` -- full sweep, recorded
  next to the Fig.-6 series;
* ``python benchmarks/bench_query_stream.py [--smoke]`` -- standalone, used
  by CI (``--smoke`` shrinks sizes so a regression fails loudly in seconds).
"""

from pathlib import Path

import pytest

from repro.bench.report import record_report
from repro.bench.stream import query_stream_series
from repro.bench.smoke import record_smoke

RESULTS = Path(__file__).parent / "results"


@pytest.fixture(scope="module")
def series():
    s = query_stream_series(fragment_counts=(4, 8, 16))
    record_report("query_stream", s.render(), RESULTS)
    return s


def test_stream_parity(series):
    for p in series.points:
        assert p.parity, f"session answers diverged at |F|={p.n_fragments}"


def test_stream_speedup_at_16_fragments(series):
    p16 = next(p for p in series.points if p.n_fragments == 16)
    assert p16.speedup >= 2.0, (
        f"session serving must amortize setup: {p16.speedup:.2f}x < 2x "
        f"(one-shot {p16.oneshot_qps:.1f} q/s vs session {p16.session_qps:.1f} q/s)"
    )


def test_stream_cache_hits_reported(series):
    for p in series.points:
        assert p.cache_hit_rate > 0.0, "mixed stream must produce cache hits"


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="tiny sizes for CI")
    parser.add_argument("--fragments", type=int, nargs="+", default=[4, 8, 16])
    parser.add_argument("--nodes", type=int, default=3000)
    parser.add_argument("--edges", type=int, default=15000)
    parser.add_argument("--distinct", type=int, default=6)
    parser.add_argument("--repeat", type=int, default=4)
    args = parser.parse_args(argv)

    # CI smoke runs on noisy shared runners: gate at a lenient 1.3x that
    # still catches "amortization broke entirely"; the full-size run keeps
    # the paper-grade 2x bar.
    threshold = 2.0
    if args.smoke:
        args.nodes, args.edges = 600, 3000
        args.distinct, args.repeat = 3, 3
        args.fragments = [2, 4, 16]
        threshold = 1.3

    series = query_stream_series(
        fragment_counts=tuple(args.fragments),
        n_nodes=args.nodes,
        n_edges=args.edges,
        n_distinct=args.distinct,
        repeat=args.repeat,
    )
    print(series.render())
    failures = []
    if not all(p.parity for p in series.points):
        failures.append("answer parity violated")
    p_wide = max(series.points, key=lambda p: p.n_fragments)
    if p_wide.n_fragments >= 16 and p_wide.speedup < threshold:
        failures.append(
            f"speedup at |F|={p_wide.n_fragments} is {p_wide.speedup:.2f}x "
            f"(< {threshold}x)"
        )
    record_smoke(
        "query_stream",
        {
            "smoke": args.smoke,
            "ok": not failures,
            "threshold": threshold,
            "points": [
                {
                    "n_fragments": p.n_fragments,
                    "n_queries": p.n_queries,
                    "oneshot_qps": p.oneshot_qps,
                    "session_qps": p.session_qps,
                    "speedup": p.speedup,
                    "cache_hit_rate": p.cache_hit_rate,
                    "parity": p.parity,
                }
                for p in series.points
            ],
        },
    )
    if failures:
        print("FAIL:", "; ".join(failures))
        return 1
    print("ok: session serving beats one-shot, answers identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
