"""Figure 6(m)(n): dGPM on large synthetic graphs, sweeping |F|.

Paper shape: on the synthetic graph (Match omitted -- a single site cannot
hold G), dGPM keeps its high degree of parallelism and ships orders of
magnitude less data than disHHK and dMes.
"""

from pathlib import Path

import pytest

from repro.bench import figures
from repro.bench.report import record_report
from repro.core import run_dgpm

RESULTS = Path(__file__).parent / "results"


@pytest.fixture(scope="module")
def series():
    s = figures.fig6_mn_synthetic_fragments()
    record_report("fig6_mn", s.render(), RESULTS)
    return s


def test_fig6m_pt_parallelism(benchmark, series):
    pts = [p.pt_seconds["dGPM"] for p in series.points]
    assert min(pts[1:]) < pts[0]
    def med(alg):
        return series.median("pt_seconds", alg)
    assert med("dGPM") < med("disHHK")
    assert med("dGPM") < med("dMes")
    for p in series.points:
        assert "Match" not in p.pt_seconds  # omitted as in the paper
    graph = figures.synthetic_graph(figures._n(8000), figures._n(32000))
    from repro.graph.generators import contiguous_block_assignment
    from repro.partition import fragment_graph, refine_to_vf_ratio

    frag = refine_to_vf_ratio(
        fragment_graph(graph, contiguous_block_assignment(graph, 20)), 0.20, seed=3
    )
    q = figures._queries(graph, (5, 10), seeds=1)[0]
    benchmark.pedantic(run_dgpm, args=(q, frag), rounds=3, iterations=1)


def test_fig6n_ds_ordering(benchmark, series):
    for p in series.points:
        assert p.ds_kb["dGPM"] < p.ds_kb["disHHK"]
        assert p.ds_kb["dGPM"] < p.ds_kb["dMes"]
    graph = figures.synthetic_graph(figures._n(8000), figures._n(32000))
    from repro.graph.generators import contiguous_block_assignment
    from repro.partition import fragment_graph, refine_to_vf_ratio

    frag = refine_to_vf_ratio(
        fragment_graph(graph, contiguous_block_assignment(graph, 8)), 0.20, seed=3
    )
    q = figures._queries(graph, (5, 10), seeds=1)[0]
    benchmark.pedantic(run_dgpm, args=(q, frag), rounds=3, iterations=1)
