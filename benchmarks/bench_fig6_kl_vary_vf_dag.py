"""Figure 6(k)(l): dGPMd vs the boundary ratio |Vf|/|V| at d = 4.

Paper shape: dGPMd's PT is *insensitive* to |Vf| (Theorem 3: the bound has no
|Vf| term -- contrast with dGPM's 81% growth over the same sweep); its DS
grows with |Vf| but stays orders below disHHK (2144x) and dMes (87x).
"""

from pathlib import Path

import pytest

from repro.bench import figures
from repro.bench.report import record_report
from repro.core import run_dgpm, run_dgpmd

RESULTS = Path(__file__).parent / "results"


@pytest.fixture(scope="module")
def series():
    s = figures.fig6_kl_vary_vf_dag()
    record_report("fig6_kl", s.render(), RESULTS)
    return s


def test_fig6k_pt_insensitive_to_vf(benchmark, series):
    pts = [p.pt_seconds["dGPMd"] for p in series.points]
    # Theorem 3: PT independent of |Vf|; allow 2x measurement noise where
    # the paper's dGPM grew 81% and dGPMd stayed flat.
    assert max(pts) <= 3.0 * min(pts)
    graph = figures.citation_graph()
    frag = figures.partitioned("citation", 8, 0.50)
    q = figures._dag_queries(graph, 4, seeds=1)[0]
    benchmark.pedantic(run_dgpmd, args=(q, frag), rounds=3, iterations=1)


def test_fig6l_ds_grows_but_stays_smallest(benchmark, series):
    first, last = series.points[0], series.points[-1]
    assert last.ds_kb["dGPMd"] >= first.ds_kb["dGPMd"] * 0.8
    for p in series.points:
        assert p.ds_kb["dGPMd"] < p.ds_kb["disHHK"]
        assert p.ds_kb["dGPMd"] < p.ds_kb["dMes"]
    # dGPM on the same instance: its PT (not dGPMd's) reacts to |Vf|
    graph = figures.citation_graph()
    q = figures._dag_queries(graph, 4, seeds=1)[0]
    frag = figures.partitioned("citation", 8, 0.25)
    benchmark.pedantic(run_dgpm, args=(q, frag), rounds=3, iterations=1)
