"""Figure 6(c)(d): PT and DS vs query size |Q| from (4,8) to (8,16).

Paper shape: PT of every algorithm grows with |Q| (Match's growth is mild);
DS of dGPM is much less sensitive to |Q| than disHHK's and dMes's.
"""

from pathlib import Path

import pytest

from repro.bench import figures
from repro.bench.report import record_report
from repro.core import run_dgpm

RESULTS = Path(__file__).parent / "results"


@pytest.fixture(scope="module")
def series():
    s = figures.fig6_cd_vary_query()
    record_report("fig6_cd", s.render(), RESULTS)
    return s


def test_fig6c_dgpm_wins_at_every_query_size(benchmark, series):
    def med(alg):
        return series.median("pt_seconds", alg)
    assert med("dGPM") < med("disHHK")
    assert med("dGPM") < med("dMes")
    assert med("dGPM") < med("Match")
    graph = figures.yahoo_graph()
    frag = figures.partitioned("yahoo", 8, 0.25)
    big_query = figures._queries(graph, (8, 16), seeds=1)[0]
    benchmark.pedantic(run_dgpm, args=(big_query, frag), rounds=3, iterations=1)


def test_fig6d_ds_sensitivity(benchmark, series):
    first, last = series.points[0], series.points[-1]
    # dGPM's DS growth across the sweep stays below the rivals'
    dgpm_growth = last.ds_kb["dGPM"] / max(first.ds_kb["dGPM"], 1e-9)
    dmes_growth = last.ds_kb["dMes"] / max(first.ds_kb["dMes"], 1e-9)
    assert last.ds_kb["dGPM"] < last.ds_kb["disHHK"]
    assert last.ds_kb["dGPM"] < last.ds_kb["dMes"]
    assert dgpm_growth < 2 * max(dmes_growth, 1.0)
    graph = figures.yahoo_graph()
    frag = figures.partitioned("yahoo", 8, 0.25)
    q = figures._queries(graph, (4, 8), seeds=1)[0]
    benchmark.pedantic(run_dgpm, args=(q, frag), rounds=3, iterations=1)
