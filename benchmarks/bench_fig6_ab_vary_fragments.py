"""Figure 6(a)(b): PT and DS of dGPM vs the number of fragments |F|.

Paper shape: more fragments => lower dGPM response time (high degree of
parallelism); Match is indifferent to |F|; dGPM is the fastest algorithm and
ships less data than disHHK, dMes and Match; DS rises only mildly with |F|.
"""

from pathlib import Path

import pytest

from repro.bench import figures
from repro.bench.report import record_report
from repro.core import run_dgpm

RESULTS = Path(__file__).parent / "results"


@pytest.fixture(scope="module")
def series():
    s = figures.fig6_ab_vary_fragments()
    record_report("fig6_ab", s.render(), RESULTS)
    return s


@pytest.fixture(scope="module")
def instance():
    graph = figures.yahoo_graph()
    frag = figures.partitioned("yahoo", 8, 0.25)
    query = figures._queries(graph, (5, 10), seeds=1)[0]
    return query, frag


def test_fig6a_pt_decreases_with_fragments(benchmark, series, instance):
    pts = [p.pt_seconds["dGPM"] for p in series.points]
    # robust trend: the best wide-|F| point beats the |F|=4 point
    assert min(pts[2:]) < pts[0], "dGPM PT should drop as |F| grows"
    # ordering claims compared on sweep medians (single points can glitch;
    # the paper's margins are 3-50x)
    def med(alg):
        return series.median("pt_seconds", alg)
    assert med("dGPM") < med("Match")
    assert med("dGPM") < med("dMes")
    assert med("dGPM") < med("disHHK")
    assert med("dGPM") < med("dGPMNOpt")
    query, frag = instance
    benchmark.pedantic(run_dgpm, args=(query, frag), rounds=3, iterations=1)


def test_fig6b_ds_ordering(benchmark, series, instance):
    for p in series.points:
        assert p.ds_kb["dGPM"] < p.ds_kb["disHHK"]
        assert p.ds_kb["dGPM"] < p.ds_kb["dMes"]
        assert p.ds_kb["dGPM"] < p.ds_kb["Match"]
    query, frag = instance
    benchmark.pedantic(
        lambda: run_dgpm(query, frag).metrics.ds_bytes, rounds=3, iterations=1
    )
