"""Theorem 1, measured: the two impossibility families (Figure 2).

Family (1): |Q| and |Fm| constant, |F| = n -- communication rounds (the
response-time driver) grow linearly in n.  Family (2): |Q| constant,
|F| = 2 -- data shipment grows linearly in n.  Any *correct* algorithm must
exhibit this growth; dGPM does, while remaining correct at every size.
"""

from pathlib import Path

import pytest

from repro.bench import figures
from repro.bench.report import record_report
from repro.core import run_dgpm
from repro.core.impossibility import audit_data_shipment, audit_parallel_time
from repro.graph.examples import figure2

RESULTS = Path(__file__).parent / "results"

SIZES = (4, 8, 16, 32, 64)


@pytest.fixture(scope="module")
def report():
    text = figures.impossibility_report(SIZES)
    record_report("impossibility", text, RESULTS)
    return text


def test_rounds_grow_linearly_at_constant_fm(benchmark, report):
    points = audit_parallel_time(SIZES)
    assert all(p.correct for p in points)
    assert len({p.fm_size for p in points}) == 1
    # linear growth: rounds(64)/rounds(4) ~ 16; demand at least 8x
    assert points[-1].rounds >= 8 * max(points[0].rounds // 4, 1)
    q, _, frag = figure2(32, close_cycle=False)
    benchmark.pedantic(run_dgpm, args=(q, frag), rounds=3, iterations=1)


def test_ds_grows_linearly_at_two_fragments(benchmark, report):
    points = audit_data_shipment(SIZES)
    assert all(p.correct for p in points)
    assert all(p.n_fragments == 2 for p in points)
    assert points[-1].ds_bytes >= 4 * points[0].ds_bytes
    from repro.graph.examples import figure2_two_site

    q, _, frag = figure2_two_site(32)
    benchmark.pedantic(run_dgpm, args=(q, frag), rounds=3, iterations=1)
