"""Section 4.2 ablation: incremental evaluation and the push operation.

Paper claim: dGPM with both optimizations is ~20x faster than dGPMNOpt on
EC2-scale graphs.  At laptop scale the gap compresses but the ordering must
hold: full dGPM <= each single ablation <= dGPMNOpt (up to noise), and the
push threshold θ trades data for rounds.
"""

from pathlib import Path

import pytest

from repro.bench import figures
from repro.bench.report import record_report
from repro.core import DgpmConfig, run_dgpm
from repro.graph.examples import figure2

RESULTS = Path(__file__).parent / "results"


@pytest.fixture(scope="module")
def series():
    s = figures.ablation_optimizations()
    record_report("ablation", s.render(), RESULTS)
    return s


def test_optimizations_help(benchmark, series):
    point = series.points[0]
    assert point.pt_seconds["dGPM"] <= 1.2 * point.pt_seconds["dGPMNOpt"]
    assert point.pt_seconds["no-push"] <= 1.2 * point.pt_seconds["dGPMNOpt"]
    graph = figures.yahoo_graph()
    frag = figures.partitioned("yahoo", 8, 0.25)
    q = figures._queries(graph, (5, 10), seeds=1)[0]
    benchmark.pedantic(
        run_dgpm, args=(q, frag),
        kwargs={"config": DgpmConfig().without_optimizations()},
        rounds=3, iterations=1,
    )


def test_push_trades_data_for_rounds(benchmark, series):
    # On the long chain the tradeoff is stark and deterministic.
    q, _, frag = figure2(32, close_cycle=False)
    with_push = run_dgpm(q, frag, DgpmConfig(enable_push=True))
    without = run_dgpm(q, frag, DgpmConfig(enable_push=False))
    assert with_push.relation == without.relation
    assert with_push.metrics.n_rounds < without.metrics.n_rounds
    assert with_push.metrics.ds_bytes > without.metrics.ds_bytes
    benchmark.pedantic(
        run_dgpm, args=(q, frag),
        kwargs={"config": DgpmConfig(enable_push=True)},
        rounds=3, iterations=1,
    )
