"""Sharded vs replicated worker memory: the fragment-ownership gate.

The whole point of ``backend="sharded"`` (ISSUE 8, the top ROADMAP open
item) is that a worker holds only its *owned* fragments -- the paper's site
model -- instead of a full replica session, so per-worker memory scales
with ``|F|/n`` rather than ``|F|``.  This benchmark spawns both pools over
the same 8000-node/32000-edge web graph at ``|F| = 16`` with the ``spawn``
start method (no copy-on-write sharing: every page a worker holds is its
own, so ``VmHWM`` is honest), serves the same query stream through each,
and compares per-worker peak RSS.

Gate: **max sharded worker peak RSS < 0.6x the max replicated worker's** at
4 workers, with answers parity-checked against a from-scratch simulation.
The RSS gate needs ``/proc/<pid>/status`` (Linux); elsewhere it degrades to
parity-only, loudly reported.

Runs two ways:

* ``pytest benchmarks/ -o python_files='bench_*.py'`` -- recorded sweep;
* ``python benchmarks/bench_sharded.py [--smoke]`` -- standalone CI gate.
"""

from pathlib import Path
from typing import Dict, List, Optional

import pytest

from repro import ConcurrentSessionServer, hash_partition, simulation, web_graph
from repro.bench.report import record_report
from repro.bench.smoke import record_smoke
from repro.bench.workloads import cyclic_pattern

RESULTS = Path(__file__).parent / "results"

RSS_RATIO_GATE = 0.6


def _peak_rss_kb(pid: int) -> Optional[int]:
    """``VmHWM`` of another live process (Linux); None where unsupported."""
    try:
        with open(f"/proc/{pid}/status", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except OSError:
        return None
    return None


def sharded_memory_run(
    n_nodes: int = 8000,
    n_edges: int = 32000,
    n_fragments: int = 16,
    n_workers: int = 4,
    n_queries: int = 6,
    seed: int = 17,
) -> Dict[str, object]:
    """Serve one stream through both backends; return parity + RSS facts."""
    graph = web_graph(n_nodes, n_edges, n_labels=5, seed=seed)
    frag = hash_partition(graph, n_fragments, seed=seed)
    queries = [cyclic_pattern(graph, 3, 4, seed=s) for s in range(n_queries)]
    oracles = [simulation(q, graph) for q in queries]

    def drive(backend: str) -> Dict[str, object]:
        with ConcurrentSessionServer(
            frag, backend=backend, n_workers=n_workers, mp_context="spawn"
        ) as server:
            pool = server._shards if backend == "sharded" else server._workers
            parity = all(
                server.run(q, algorithm="dgpm").relation == oracle
                for q, oracle in zip(queries, oracles)
            )
            rss = [_peak_rss_kb(h.process.pid) for h in pool]
        return {"parity": parity, "rss_kb": rss}

    replicated = drive("process")
    sharded = drive("sharded")
    rep_rss = [r for r in replicated["rss_kb"] if r is not None]
    sh_rss = [r for r in sharded["rss_kb"] if r is not None]
    ratio = (max(sh_rss) / max(rep_rss)) if rep_rss and sh_rss else None
    return {
        "n_nodes": n_nodes,
        "n_edges": n_edges,
        "n_fragments": n_fragments,
        "n_workers": n_workers,
        "parity": bool(replicated["parity"] and sharded["parity"]),
        "replicated_peak_rss_kb": rep_rss,
        "sharded_peak_rss_kb": sh_rss,
        "rss_ratio": ratio,
    }


def render(run: Dict[str, object]) -> str:
    lines = [
        "sharded vs replicated per-worker peak RSS "
        f"(|F|={run['n_fragments']}, {run['n_workers']} workers, "
        f"{run['n_nodes']} nodes / {run['n_edges']} edges)",
        f"  replicated: {run['replicated_peak_rss_kb']} kB",
        f"  sharded:    {run['sharded_peak_rss_kb']} kB",
        (
            f"  max ratio:  {run['rss_ratio']:.3f} (gate < {RSS_RATIO_GATE})"
            if run["rss_ratio"] is not None
            else "  max ratio:  n/a (no /proc RSS on this platform)"
        ),
        f"  parity:     {'ok' if run['parity'] else 'VIOLATED'}",
    ]
    return "\n".join(lines)


@pytest.fixture(scope="module")
def memory_run():
    run = sharded_memory_run()
    record_report("sharded_memory", render(run), RESULTS)
    return run


def test_sharded_parity(memory_run):
    assert memory_run["parity"], "sharded answers diverged from the oracle"


def test_sharded_per_worker_rss_gate(memory_run):
    ratio = memory_run["rss_ratio"]
    if ratio is None:
        pytest.skip("no /proc/<pid>/status on this platform")
    assert ratio < RSS_RATIO_GATE, (
        f"sharded workers must be lighter than replicas: max RSS ratio "
        f"{ratio:.3f} >= {RSS_RATIO_GATE} "
        f"(sharded {memory_run['sharded_peak_rss_kb']} kB vs replicated "
        f"{memory_run['replicated_peak_rss_kb']} kB)"
    )


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument("--nodes", type=int, default=12000)
    parser.add_argument("--edges", type=int, default=48000)
    parser.add_argument("--fragments", type=int, default=16)
    parser.add_argument("--workers", type=int, default=4)
    args = parser.parse_args(argv)
    if args.smoke:
        # Big enough that fragment data dominates the per-process
        # interpreter baseline, small enough for CI seconds.
        args.nodes, args.edges = 8000, 32000

    run = sharded_memory_run(
        n_nodes=args.nodes,
        n_edges=args.edges,
        n_fragments=args.fragments,
        n_workers=args.workers,
    )
    print(render(run))
    failures: List[str] = []
    if not run["parity"]:
        failures.append("answer parity violated")
    if run["rss_ratio"] is None:
        print(
            "note: per-worker RSS is unreadable on this platform -- the "
            "0.6x gate is skipped (parity still enforced)"
        )
    elif run["rss_ratio"] >= RSS_RATIO_GATE:
        failures.append(
            f"max sharded/replicated RSS ratio {run['rss_ratio']:.3f} "
            f">= {RSS_RATIO_GATE}"
        )
    record_smoke(
        "sharded",
        {
            "smoke": args.smoke,
            "ok": not failures,
            "gate": RSS_RATIO_GATE,
            **run,
        },
    )
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
