"""Concurrent serving: process workers vs one serial session (perf gate).

The ROADMAP's heavy-traffic regime: the same resident 16-fragment graph
serves a mixed query stream serially, through the thread backend, and
through 4 process workers (replica sessions, deps shipped once, sticky
routing).  Answers are parity-checked across all three modes.

Gate: the process backend must sustain **>= 2x** the serial throughput at 4
workers on the |F|=16 stream.  Parallel speedup needs parallel hardware, so
the speedup gate engages when the host exposes >= 4 usable CPUs (CI does);
on smaller hosts it degrades gracefully (>= 2 CPUs: a lenient 1.2x sanity
bar, 1 CPU: parity only, loudly reported) instead of failing on physics.

Runs two ways:

* ``pytest benchmarks/ -o python_files='bench_*.py'`` -- full sweep, recorded
  next to the Fig.-6 series;
* ``python benchmarks/bench_concurrent.py [--smoke]`` -- standalone, used by
  CI (``--smoke`` shrinks sizes so a regression fails loudly in seconds).
"""

from pathlib import Path

import pytest

from repro.bench.concurrent import concurrent_stream_series, usable_cpus
from repro.bench.report import record_report
from repro.bench.smoke import record_smoke

RESULTS = Path(__file__).parent / "results"


@pytest.fixture(scope="module")
def series():
    s = concurrent_stream_series(fragment_counts=(16,))
    record_report("concurrent_stream", s.render(), RESULTS)
    return s


def test_concurrent_parity(series):
    for p in series.points:
        assert p.parity, f"concurrent answers diverged at |F|={p.n_fragments}"


def test_process_workers_hit_replica_caches(series):
    for p in series.points:
        assert p.process_hit_rate > 0.0, "sticky routing produced no cache hits"


@pytest.mark.skipif(
    usable_cpus() < 4,
    reason="the 2x@4-workers gate needs >= 4 usable CPUs to be physical",
)
def test_process_backend_speedup_gate(series):
    p = max(series.points, key=lambda p: p.n_fragments)
    assert p.process_speedup >= 2.0, (
        f"process serving must parallelize: {p.process_speedup:.2f}x < 2x "
        f"({p.serial_qps:.1f} q/s serial vs {p.process_qps:.1f} q/s at "
        f"{p.n_workers} workers)"
    )


def test_thread_backend_overhead_is_bounded(series):
    """The thread backend is for overlap, not speedup -- but its reader-lock
    and pool overhead must never halve throughput."""
    for p in series.points:
        assert p.thread_speedup >= 0.5, (
            f"thread front-end overhead too high: {p.thread_speedup:.2f}x"
        )


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="tiny sizes for CI")
    parser.add_argument("--fragments", type=int, nargs="+", default=[16])
    parser.add_argument("--nodes", type=int, default=3000)
    parser.add_argument("--edges", type=int, default=15000)
    parser.add_argument("--distinct", type=int, default=12)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--workers", type=int, default=4)
    args = parser.parse_args(argv)

    # CI smoke runs on noisy shared runners: a lenient 1.5x still catches
    # "parallelism broke entirely"; the full-size run keeps the 2x bar.
    threshold = 2.0
    if args.smoke:
        args.nodes, args.edges = 1200, 6000
        args.distinct, args.repeat = 8, 3
        threshold = 1.5

    cpus = usable_cpus()
    if cpus < 4:
        # Scale expectations to the hardware rather than failing on physics.
        threshold = 1.2 if cpus >= 2 else None

    series = concurrent_stream_series(
        fragment_counts=tuple(args.fragments),
        n_nodes=args.nodes,
        n_edges=args.edges,
        n_distinct=args.distinct,
        repeat=args.repeat,
        n_workers=args.workers,
    )
    print(series.render())
    failures = []
    if not all(p.parity for p in series.points):
        failures.append("answer parity violated")
    p_wide = max(series.points, key=lambda p: p.n_fragments)
    if threshold is None:
        print(
            "note: 1 usable CPU -- the process-parallel speedup gate is "
            "skipped (parity still enforced); run on >= 4 CPUs for the 2x bar"
        )
    elif p_wide.process_speedup < threshold:
        failures.append(
            f"process speedup at |F|={p_wide.n_fragments} is "
            f"{p_wide.process_speedup:.2f}x (< {threshold}x at {cpus} CPUs)"
        )
    record_smoke(
        "concurrent",
        {
            "smoke": args.smoke,
            "ok": not failures,
            "threshold": threshold,
            "usable_cpus": cpus,
            "points": [
                {
                    "n_fragments": p.n_fragments,
                    "n_queries": p.n_queries,
                    "n_workers": p.n_workers,
                    "serial_qps": p.serial_qps,
                    "thread_qps": p.thread_qps,
                    "process_qps": p.process_qps,
                    "process_speedup": p.process_speedup,
                    "process_hit_rate": p.process_hit_rate,
                    "parity": p.parity,
                }
                for p in series.points
            ],
        },
    )
    if failures:
        print("FAIL:", "; ".join(failures))
        return 1
    print("ok: concurrent serving parity holds"
          + ("" if threshold is None else f", process backend >= {threshold}x"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
