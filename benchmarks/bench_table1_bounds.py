"""Table 1 (this work's rows): the claimed bounds, measured.

Validates on live runs that: dGPM's shipped variable-messages stay within
the O(|Ef| |Vq|) budget; dGPMd finishes within d+1 rank rounds; dGPMt ships
one O(|Q|)-vector per fragment; and the Figure-5 message counts match the
paper exactly (12 vs 6).
"""

from pathlib import Path

import pytest

from repro.bench import figures
from repro.bench.report import record_report
from repro.core import DgpmConfig, run_dgpm, run_dgpmd
from repro.graph.examples import figure5

RESULTS = Path(__file__).parent / "results"


@pytest.fixture(scope="module")
def report():
    text = figures.table1_bounds()
    record_report("table1", text, RESULTS)
    return text


def test_table1_bounds_hold(benchmark, report):
    assert "VIOLATED" not in report
    assert "paper: 12" in report and "paper: 6" in report
    q5, _, f5 = figure5()
    benchmark.pedantic(
        run_dgpm, args=(q5, f5), kwargs={"config": DgpmConfig(enable_push=False)},
        rounds=5, iterations=1,
    )


def test_figure5_message_counts_exact(benchmark, report):
    q5, _, f5 = figure5()
    dgpm = run_dgpm(q5, f5, DgpmConfig(enable_push=False))
    dgpmd = run_dgpmd(q5, f5)
    assert dgpm.metrics.n_messages == 12
    assert dgpmd.metrics.n_messages == 6
    benchmark.pedantic(run_dgpmd, args=(q5, f5), rounds=5, iterations=1)
