"""Incremental maintenance (Section 4.2 / [13]): repair vs recompute.

Streams edge deletions into a web graph and compares the cost of keeping
Q(G) fresh with the :class:`IncrementalDgpmSession` (falsification
propagation through the affected area only) against re-running dGPM from
scratch after every update.  The paper's incremental-lEval claim is that
repair work is O(|AFF|); here that shows up as a per-update speedup and, for
updates no match depends on, literally zero shipped bytes.
"""

import random
import time
from pathlib import Path

import pytest

from repro.bench import figures
from repro.bench.report import record_report
from repro.core import DgpmConfig, IncrementalDgpmSession, run_dgpm
from repro.simulation import simulation

RESULTS = Path(__file__).parent / "results"

N_UPDATES = 20


@pytest.fixture(scope="module")
def workload():
    graph = figures.yahoo_graph()
    frag = figures.partitioned("yahoo", 8, 0.25)
    query = figures._queries(graph, (5, 10), seeds=1)[0]
    rng = random.Random(13)
    edges = sorted(frag.graph.edges())
    deletions = rng.sample(edges, N_UPDATES)
    return query, frag, deletions


@pytest.fixture(scope="module")
def comparison(workload):
    query, frag, deletions = workload

    session = IncrementalDgpmSession(query, frag)
    t0 = time.perf_counter()
    inc_messages = 0
    free_updates = 0
    for u, v in deletions:
        update = session.delete_edge(u, v)
        inc_messages += update.n_messages
        if update.n_messages == 0 and update.falsified_local == 0:
            free_updates += 1
    inc_wall = time.perf_counter() - t0
    final_incremental = session.relation()

    # recompute-per-update baseline on an equivalent private copy
    graph2 = frag.graph.copy()
    from repro.partition.fragmentation import fragment_graph

    assignment = {w: frag.owner(w) for w in graph2.nodes()}
    t0 = time.perf_counter()
    re_messages = 0
    for u, v in deletions:
        graph2.remove_edge(u, v)
        frag2 = fragment_graph(graph2, assignment)
        result = run_dgpm(query, frag2, DgpmConfig(enable_push=False))
        re_messages += result.metrics.n_messages
    re_wall = time.perf_counter() - t0

    assert final_incremental == result.relation == simulation(query, graph2)

    text = (
        f"incremental maintenance over {N_UPDATES} edge deletions (web graph)\n"
        f"  incremental session: {inc_wall:.3f}s total, {inc_messages} messages,"
        f" {free_updates} zero-cost updates\n"
        f"  recompute baseline : {re_wall:.3f}s total, {re_messages} messages\n"
        f"  speedup: {re_wall / max(inc_wall, 1e-9):.1f}x wall,"
        f" {re_messages / max(inc_messages, 1):.1f}x messages"
    )
    record_report("incremental", text, RESULTS)
    return inc_wall, re_wall, inc_messages, re_messages, free_updates


def test_incremental_beats_recompute(benchmark, comparison, workload):
    inc_wall, re_wall, inc_messages, re_messages, free_updates = comparison
    assert inc_wall < re_wall, "AFF-bounded repair must beat full recompute"
    assert inc_messages <= re_messages
    query, frag, deletions = workload
    session = IncrementalDgpmSession(query, frag)

    def one_deletion(i=[0]):
        u, v = deletions[i[0] % len(deletions)]
        if session.graph.has_edge(u, v):
            session.delete_edge(u, v)
        i[0] += 1

    benchmark.pedantic(one_deletion, rounds=5, iterations=1)


def test_most_updates_are_cheap(benchmark, comparison, workload):
    # The AFF of a random deletion is usually tiny: the median update ships
    # (close to) nothing.
    _, _, inc_messages, _, free_updates = comparison
    assert inc_messages < N_UPDATES * 50
    query, frag, _ = workload
    benchmark.pedantic(
        lambda: IncrementalDgpmSession(query, frag), rounds=3, iterations=1
    )
