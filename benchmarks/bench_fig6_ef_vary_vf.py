"""Figure 6(e)(f): PT and DS vs the boundary-node ratio |Vf|/|V|.

Paper shape: dGPM's PT and DS both grow as the partition gets worse (its
bounds are functions of |Vf| and |Ef|), yet it stays faster and lighter than
disHHK and dMes across the whole sweep.
"""

from pathlib import Path

import pytest

from repro.bench import figures
from repro.bench.report import record_report
from repro.core import run_dgpm

RESULTS = Path(__file__).parent / "results"


@pytest.fixture(scope="module")
def series():
    s = figures.fig6_ef_vary_vf()
    record_report("fig6_ef", s.render(), RESULTS)
    return s


def test_fig6e_pt_grows_with_vf_but_dgpm_stays_ahead(benchmark, series):
    first, last = series.points[0], series.points[-1]
    assert last.ds_kb["dGPM"] > first.ds_kb["dGPM"]  # partition-bounded: worse cut, more DS
    def med(alg):
        return series.median("pt_seconds", alg)
    assert med("dGPM") < med("disHHK")
    assert med("dGPM") < med("dMes")
    graph = figures.yahoo_graph()
    frag = figures.partitioned("yahoo", 8, 0.50)
    q = figures._queries(graph, (5, 10), seeds=1)[0]
    benchmark.pedantic(run_dgpm, args=(q, frag), rounds=3, iterations=1)


def test_fig6f_ds_ordering_across_sweep(benchmark, series):
    for p in series.points:
        assert p.ds_kb["dGPM"] < p.ds_kb["disHHK"]
        assert p.ds_kb["dGPM"] < p.ds_kb["dMes"]
    graph = figures.yahoo_graph()
    frag = figures.partitioned("yahoo", 8, 0.25)
    q = figures._queries(graph, (5, 10), seeds=1)[0]
    benchmark.pedantic(run_dgpm, args=(q, frag), rounds=3, iterations=1)
