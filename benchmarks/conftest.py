"""Shared infrastructure for the benchmark suite.

Each ``bench_*.py`` module reproduces one of the paper's tables/figures: it
builds the full sweep (the paper-style PT/DS series), registers the rendered
tables via :func:`repro.bench.report.record_report`, and times one
representative run with pytest-benchmark.

The registered series are written to ``benchmarks/results/*.txt`` and echoed
in the terminal summary, so ``pytest benchmarks/ --benchmark-only`` leaves a
complete experimental record.
"""

from __future__ import annotations

from pathlib import Path

from repro.bench.report import all_reports

RESULTS_DIR = Path(__file__).parent / "results"


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    reports = all_reports()
    if not reports:
        return
    terminalreporter.section("paper experiment series (also in benchmarks/results/)")
    for name in sorted(reports):
        terminalreporter.write_line("")
        terminalreporter.write_line(f"#### {name} ####")
        for line in reports[name].splitlines():
            terminalreporter.write_line(line)
